package server

import (
	"container/list"
	"sync"
	"time"

	"samplewh/internal/obs"
)

// idemRegistry remembers the responses of recently acknowledged ingest
// batches by client-supplied Idempotency-Key, so a client retrying after an
// ambiguous failure (timeout, dropped connection, server crash) gets the
// original answer back instead of double-ingesting. The registry is bounded
// two ways — idempotency is a retry-window guarantee, not an eternal ledger:
//
//   - Capacity: over it the least-recently-used entry is evicted (a get
//     refreshes recency, so live retry keys survive churn that would have
//     rotated them out under the old FIFO policy).
//   - Age: entries older than the TTL answer as absent and are reaped
//     lazily on access and during eviction, so a registry seeded from a
//     large journal replay shrinks back to its working set.
//
// Evictions (capacity or age) count in server.idem_evictions.
//
// Keys are scoped per dataset/partition, so clients may reuse a key across
// partitions without collisions. The registry is seeded from journal replay
// at startup (Server.SeedIdempotency), closing the loop across crashes: a
// batch acknowledged just before a kill answers its retry as a replay after
// the restart.
type idemRegistry struct {
	mu        sync.Mutex
	cap       int
	ttl       time.Duration // <= 0 disables age-based expiry
	m         map[string]*list.Element
	order     *list.List // front = most recently used
	evictions *obs.Counter
}

// idemEntry is one remembered acknowledgment.
type idemEntry struct {
	scope string
	resp  IngestResponse
	added time.Time
}

func newIdemRegistry(capacity int, ttl time.Duration, evictions *obs.Counter) *idemRegistry {
	return &idemRegistry{
		cap:       capacity,
		ttl:       ttl,
		m:         make(map[string]*list.Element, capacity),
		order:     list.New(),
		evictions: evictions,
	}
}

// idemScope builds the registry key for one batch.
func idemScope(ds, part, key string) string { return ds + "\x00" + part + "\x00" + key }

// expired reports whether an entry is past the TTL.
func (r *idemRegistry) expired(e *idemEntry, now time.Time) bool {
	return r.ttl > 0 && now.Sub(e.added) > r.ttl
}

func (r *idemRegistry) get(scope string) (IngestResponse, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.m[scope]
	if !ok {
		return IngestResponse{}, false
	}
	e := el.Value.(*idemEntry)
	if r.expired(e, time.Now()) {
		r.order.Remove(el)
		delete(r.m, scope)
		r.evictions.Inc()
		return IngestResponse{}, false
	}
	r.order.MoveToFront(el)
	return e.resp, true
}

func (r *idemRegistry) put(scope string, resp IngestResponse) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[scope]; ok {
		e := el.Value.(*idemEntry)
		e.resp, e.added = resp, now
		r.order.MoveToFront(el)
		return
	}
	r.m[scope] = r.order.PushFront(&idemEntry{scope: scope, resp: resp, added: now})
	for len(r.m) > r.cap {
		back := r.order.Back()
		if back == nil {
			break
		}
		r.order.Remove(back)
		delete(r.m, back.Value.(*idemEntry).scope)
		r.evictions.Inc()
	}
}

// len reports the live entry count (expired entries included until reaped).
func (r *idemRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}
