package estimate

import (
	"math"
	"testing"
)

func TestBoundedFractionFullCoverageIsFraction(t *testing.T) {
	s := reservoirSample(t, 7, 2000, 256)
	e := New(s)
	pred := func(v int64) bool { return v < 1000 }
	plain, err := e.Fraction(pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int64{0, s.ParentSize - 1, s.ParentSize} {
		got, err := BoundedFraction(s, pred, 0.95, total)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain {
			t.Fatalf("totalPop %d: bounded %+v != plain %+v", total, got, plain)
		}
	}
}

func TestBoundedFractionPartialCoverage(t *testing.T) {
	// The sample covers 2000 of 8000 requested elements (w = 1/4); half the
	// covered union matches the predicate.
	s := reservoirSample(t, 7, 2000, 256)
	pred := func(v int64) bool { return v < 1000 }
	covered, err := New(s).Fraction(pred)
	if err != nil {
		t.Fatal(err)
	}
	const total = 8000
	got, err := BoundedFraction(s, pred, 0.95, total)
	if err != nil {
		t.Fatal(err)
	}
	w := float64(s.ParentSize) / total
	if got.Lo != w*covered.Lo || got.Hi != w*covered.Hi+(1-w) {
		t.Fatalf("interval %v..%v, want %v..%v", got.Lo, got.Hi, w*covered.Lo, w*covered.Hi+(1-w))
	}
	if got.Exact {
		t.Fatal("partial coverage cannot be exact")
	}
	// The interval must admit both extremes of the uncovered remainder:
	// true fraction is at least w·p_cov (no uncovered match) and at most
	// w·p_cov + (1−w) (every uncovered element matches).
	pCov := 0.5 // true covered selectivity
	if got.Lo > w*pCov || got.Hi < w*pCov+(1-w)-0.1 {
		t.Fatalf("interval %v..%v too narrow for the uncovered remainder", got.Lo, got.Hi)
	}
}

func TestBoundedHalfWidthMonotoneInCoverage(t *testing.T) {
	// Fixing the sample and growing the uncovered remainder must widen the
	// interval: loading more partitions (raising coverage) always buys a
	// tighter bounded answer.
	s := reservoirSample(t, 11, 2000, 256)
	pred := func(v int64) bool { return v < 500 }
	prev := -1.0
	for _, total := range []int64{2000, 2500, 4000, 8000, 100000} {
		est, err := BoundedFraction(s, pred, 0.95, total)
		if err != nil {
			t.Fatal(err)
		}
		hw := HalfWidth(est)
		if hw < prev {
			t.Fatalf("half-width %v at totalPop %d shrank below %v", hw, total, prev)
		}
		prev = hw
	}
}

func TestBoundedCountScalesFraction(t *testing.T) {
	s := reservoirSample(t, 3, 2000, 256)
	pred := func(v int64) bool { return v < 1000 }
	const total = 6000
	frac, err := BoundedFraction(s, pred, 0.95, total)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := BoundedCount(s, pred, 0.95, total)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Value != frac.Value*total || cnt.Lo != frac.Lo*total || cnt.Hi != frac.Hi*total {
		t.Fatalf("count %+v does not scale fraction %+v by %d", cnt, frac, total)
	}
	if HalfWidth(cnt)/total != HalfWidth(frac) {
		t.Fatalf("fraction-scale count half-width %v != %v", HalfWidth(cnt)/total, HalfWidth(frac))
	}
}

func TestProxyHalfWidthUpperBoundsBoundedFraction(t *testing.T) {
	// The proxy uses the worst-case p = 1/2 proportion variance, so for any
	// predicate the real bounded interval must be at least as tight.
	s := reservoirSample(t, 9, 2000, 256)
	for _, total := range []int64{2000, 4000, 16000} {
		proxy, err := ProxyHalfWidth(s.Size(), s.ParentSize, total, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int64{100, 500, 1000, 1900} {
			cut := cut
			est, err := BoundedFraction(s, func(v int64) bool { return v < cut }, 0.95, total)
			if err != nil {
				t.Fatal(err)
			}
			if hw := HalfWidth(est); hw > proxy+1e-12 {
				t.Fatalf("totalPop %d pred <%d: half-width %v exceeds proxy %v", total, cut, hw, proxy)
			}
		}
	}
}

func TestProxyHalfWidthProperties(t *testing.T) {
	// Nothing covered: unbounded uncertainty.
	if hw := ProxyHalfWidthZ(0, 0, 1000, 1.96); !math.IsInf(hw, 1) {
		t.Fatalf("zero coverage half-width %v, want +Inf", hw)
	}
	// Exhaustive full coverage: zero width.
	if hw := ProxyHalfWidthZ(1000, 1000, 1000, 1.96); hw != 0 {
		t.Fatalf("exhaustive half-width %v, want 0", hw)
	}
	// Monotone decreasing as coverage grows with the merged size held fixed.
	prev := math.Inf(1)
	for covered := int64(1000); covered <= 8000; covered += 1000 {
		hw := ProxyHalfWidthZ(256, covered, 8000, 1.96)
		if hw >= prev {
			t.Fatalf("coverage %d did not tighten the proxy (%v >= %v)", covered, hw, prev)
		}
		prev = hw
	}
	// A bigger merged sample never widens the interval.
	if ProxyHalfWidthZ(512, 4000, 8000, 1.96) > ProxyHalfWidthZ(128, 4000, 8000, 1.96) {
		t.Fatal("larger sample widened the proxy interval")
	}
	// Unsupported confidence levels surface as errors.
	if _, err := ProxyHalfWidth(256, 1000, 2000, 0.5); err == nil {
		t.Fatal("unsupported confidence accepted")
	}
	if _, err := ZCrit(0.5); err == nil {
		t.Fatal("ZCrit accepted unsupported confidence")
	}
	if z, err := ZCrit(0.95); err != nil || math.Abs(z-1.96) > 0.01 {
		t.Fatalf("ZCrit(0.95) = %v, %v", z, err)
	}
}
