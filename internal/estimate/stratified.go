package estimate

import (
	"fmt"
	"math"

	"samplewh/internal/core"
)

// StratifiedEstimator answers approximate queries from a stratified sample
// (per-partition samples kept separate, paper §4.1) using the classical
// stratified-expansion estimators: per-stratum means are scaled by stratum
// population sizes and the variances combine with finite-population
// corrections. When strata differ systematically (e.g. daily partitions
// with drifting value distributions), these estimates are tighter than the
// ones obtained from a merged sample of the same total size.
type StratifiedEstimator[V comparable] struct {
	st *core.Stratified[V]
	z  float64
}

// NewStratified builds a stratified estimator at 95% confidence.
func NewStratified[V comparable](st *core.Stratified[V]) (*StratifiedEstimator[V], error) {
	if st == nil || st.NumStrata() == 0 {
		return nil, fmt.Errorf("estimate: nil or empty stratified sample")
	}
	z, err := zCrit(0.95)
	if err != nil {
		return nil, err
	}
	return &StratifiedEstimator[V]{st: st, z: z}, nil
}

// Sum estimates the total of f(v) over the union of the strata:
// T̂ = Σ_h N_h·ȳ_h with variance Σ_h N_h²(1−n_h/N_h)s_h²/n_h.
func (e *StratifiedEstimator[V]) Sum(f func(V) float64) (Estimate, error) {
	var total, variance float64
	exact := true
	for i, s := range e.st.Strata() {
		n := float64(s.Size())
		if n == 0 {
			return Estimate{}, fmt.Errorf("estimate: stratum %d has an empty sample", i)
		}
		N := float64(s.ParentSize)
		var sum, sumsq float64
		s.Hist.Each(func(v V, c int64) {
			x := f(v)
			sum += x * float64(c)
			sumsq += x * x * float64(c)
		})
		mean := sum / n
		total += N * mean
		if s.Kind != core.Exhaustive {
			exact = false
			if n > 1 {
				sVar := (sumsq - sum*mean) / (n - 1)
				if sVar < 0 {
					sVar = 0
				}
				fpc := 1 - n/N
				if fpc < 0 {
					fpc = 0
				}
				variance += N * N * fpc * sVar / n
			}
		}
	}
	se := math.Sqrt(variance)
	if exact {
		se = 0
	}
	return Estimate{
		Value:  total,
		StdErr: se,
		Lo:     total - e.z*se,
		Hi:     total + e.z*se,
		Exact:  exact,
	}, nil
}

// Avg estimates the population mean of f(v): Sum / N_total.
func (e *StratifiedEstimator[V]) Avg(f func(V) float64) (Estimate, error) {
	sum, err := e.Sum(f)
	if err != nil {
		return Estimate{}, err
	}
	N := float64(e.st.ParentSize())
	return Estimate{
		Value:  sum.Value / N,
		StdErr: sum.StdErr / N,
		Lo:     sum.Lo / N,
		Hi:     sum.Hi / N,
		Exact:  sum.Exact,
	}, nil
}

// Count estimates the number of elements satisfying pred across all strata.
func (e *StratifiedEstimator[V]) Count(pred func(V) bool) (Estimate, error) {
	est, err := e.Sum(func(v V) float64 {
		if pred(v) {
			return 1
		}
		return 0
	})
	if err != nil {
		return Estimate{}, err
	}
	if est.Lo < 0 {
		est.Lo = 0
	}
	if max := float64(e.st.ParentSize()); est.Hi > max {
		est.Hi = max
	}
	return est, nil
}

// Fraction estimates the fraction of elements satisfying pred.
func (e *StratifiedEstimator[V]) Fraction(pred func(V) bool) (Estimate, error) {
	cnt, err := e.Count(pred)
	if err != nil {
		return Estimate{}, err
	}
	N := float64(e.st.ParentSize())
	out := Estimate{
		Value:  cnt.Value / N,
		StdErr: cnt.StdErr / N,
		Lo:     cnt.Lo / N,
		Hi:     cnt.Hi / N,
		Exact:  cnt.Exact,
	}
	if out.Hi > 1 {
		out.Hi = 1
	}
	return out, nil
}
