// Package estimate answers approximate queries from the uniform samples the
// warehouse stores — the "quick approximate analytics and metadata
// discovery" that motivate the paper. Because HB/HR samples are
// statistically uniform (a Bernoulli sample conditioned on its size is a
// simple random sample), classical SRS estimators with finite-population
// correction apply: COUNT, SUM, AVG and selectivity with normal-theory
// confidence intervals, distinct-value estimation (Chao1 and GEE), sample
// quantiles, and scaled top-k frequencies. Value-set resemblance estimators
// support metadata-discovery tasks in the style of BHUNT/CORDS (paper [3],
// [15]).
package estimate

import (
	"fmt"
	"math"
	"sort"

	"samplewh/internal/core"
)

// zCrit maps a confidence level to the two-sided normal critical value used
// for intervals; only the conventional levels are supported.
func zCrit(confidence float64) (float64, error) {
	switch confidence {
	case 0.90:
		return 1.6448536269514722, nil
	case 0.95:
		return 1.959963984540054, nil
	case 0.99:
		return 2.5758293035489004, nil
	default:
		return 0, fmt.Errorf("estimate: unsupported confidence level %v (use 0.90, 0.95 or 0.99)", confidence)
	}
}

// Estimate is a point estimate with a normal-theory confidence interval. It
// marshals to JSON so serving layers (cmd/swd) can return it verbatim.
type Estimate struct {
	Value  float64 `json:"value"`
	StdErr float64 `json:"stderr"`
	// Lo and Hi are the confidence bounds.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Exact is true when derived from an exhaustive sample.
	Exact bool `json:"exact"`
}

// String renders the estimate.
func (e Estimate) String() string {
	if e.Exact {
		return fmt.Sprintf("%.6g (exact)", e.Value)
	}
	return fmt.Sprintf("%.6g ± %.3g [%.6g, %.6g]", e.Value, e.StdErr, e.Lo, e.Hi)
}

// Estimator answers approximate queries over one sample.
type Estimator[V comparable] struct {
	s          *core.Sample[V]
	confidence float64
	z          float64
}

// New builds an estimator at 95% confidence.
func New[V comparable](s *core.Sample[V]) *Estimator[V] {
	e, err := NewWithConfidence(s, 0.95)
	if err != nil {
		panic(err) // unreachable: 0.95 is always supported
	}
	return e
}

// NewWithConfidence builds an estimator with the given confidence level
// (0.90, 0.95 or 0.99).
func NewWithConfidence[V comparable](s *core.Sample[V], confidence float64) (*Estimator[V], error) {
	if s == nil || s.Hist == nil {
		return nil, fmt.Errorf("estimate: nil sample")
	}
	z, err := zCrit(confidence)
	if err != nil {
		return nil, err
	}
	return &Estimator[V]{s: s, confidence: confidence, z: z}, nil
}

// Sample returns the underlying sample.
func (e *Estimator[V]) Sample() *core.Sample[V] { return e.s }

// fpc returns the finite-population correction factor sqrt((N−n)/(N−1)) for
// a simple random sample of n from N.
func (e *Estimator[V]) fpc() float64 {
	n := float64(e.s.Size())
	N := float64(e.s.ParentSize)
	if N <= 1 || n >= N {
		return 0
	}
	return math.Sqrt((N - n) / (N - 1))
}

// interval finishes an Estimate from a point value and standard error.
func (e *Estimator[V]) interval(value, stderr float64) Estimate {
	exact := e.s.Kind == core.Exhaustive
	if exact {
		stderr = 0
	}
	return Estimate{
		Value:  value,
		StdErr: stderr,
		Lo:     value - e.z*stderr,
		Hi:     value + e.z*stderr,
		Exact:  exact,
	}
}

// Fraction estimates the fraction of data-set elements whose value satisfies
// pred (the selectivity of the predicate).
func (e *Estimator[V]) Fraction(pred func(V) bool) (Estimate, error) {
	n := e.s.Size()
	if n == 0 {
		return Estimate{}, fmt.Errorf("estimate: empty sample")
	}
	var match int64
	e.s.Hist.Each(func(v V, c int64) {
		if pred(v) {
			match += c
		}
	})
	p := float64(match) / float64(n)
	se := math.Sqrt(p*(1-p)/float64(n)) * e.fpc()
	est := e.interval(p, se)
	if est.Lo < 0 {
		est.Lo = 0
	}
	if est.Hi > 1 {
		est.Hi = 1
	}
	return est, nil
}

// Count estimates the number of data-set elements whose value satisfies
// pred: N times the sample selectivity.
func (e *Estimator[V]) Count(pred func(V) bool) (Estimate, error) {
	frac, err := e.Fraction(pred)
	if err != nil {
		return Estimate{}, err
	}
	N := float64(e.s.ParentSize)
	est := e.interval(frac.Value*N, frac.StdErr*N)
	if est.Lo < 0 {
		est.Lo = 0
	}
	if est.Hi > N {
		est.Hi = N
	}
	return est, nil
}

// Avg estimates the mean of f(v) over the data set.
func (e *Estimator[V]) Avg(f func(V) float64) (Estimate, error) {
	n := e.s.Size()
	if n == 0 {
		return Estimate{}, fmt.Errorf("estimate: empty sample")
	}
	var sum, sumsq float64
	e.s.Hist.Each(func(v V, c int64) {
		x := f(v)
		sum += x * float64(c)
		sumsq += x * x * float64(c)
	})
	mean := sum / float64(n)
	var se float64
	if n > 1 {
		variance := (sumsq - sum*mean) / float64(n-1)
		if variance < 0 {
			variance = 0
		}
		se = math.Sqrt(variance/float64(n)) * e.fpc()
	}
	return e.interval(mean, se), nil
}

// Sum estimates the total of f(v) over the data set: N times the mean.
func (e *Estimator[V]) Sum(f func(V) float64) (Estimate, error) {
	avg, err := e.Avg(f)
	if err != nil {
		return Estimate{}, err
	}
	N := float64(e.s.ParentSize)
	return e.interval(avg.Value*N, avg.StdErr*N), nil
}

// DistinctNaive returns the number of distinct values in the sample — a
// lower bound on the data set's distinct count.
func (e *Estimator[V]) DistinctNaive() int64 {
	return int64(e.s.Hist.Distinct())
}

// DistinctChao1 estimates the distinct-value count with the Chao1
// abundance estimator d + f1²/(2·f2), where f_i is the number of values
// occurring exactly i times in the sample. For exhaustive samples it
// returns the exact count.
func (e *Estimator[V]) DistinctChao1() float64 {
	d := float64(e.s.Hist.Distinct())
	if e.s.Kind == core.Exhaustive {
		return d
	}
	var f1, f2 float64
	e.s.Hist.Each(func(_ V, c int64) {
		switch c {
		case 1:
			f1++
		case 2:
			f2++
		}
	})
	// Bias-corrected Chao1 (handles f2 = 0 gracefully); the distinct count
	// can never exceed the population size, so clamp.
	est := d + f1*(f1-1)/(2*(f2+1))
	if max := float64(e.s.ParentSize); est > max {
		est = max
	}
	return est
}

// DistinctGEE estimates the distinct-value count with the
// Guaranteed-Error Estimator of Charikar et al.:
// sqrt(N/n)·f1 + Σ_{i≥2} f_i. For exhaustive samples it returns the exact
// count.
func (e *Estimator[V]) DistinctGEE() float64 {
	d := float64(e.s.Hist.Distinct())
	if e.s.Kind == core.Exhaustive || e.s.Size() == 0 {
		return d
	}
	var f1, rest float64
	e.s.Hist.Each(func(_ V, c int64) {
		if c == 1 {
			f1++
		} else {
			rest++
		}
	})
	scale := math.Sqrt(float64(e.s.ParentSize) / float64(e.s.Size()))
	est := scale*f1 + rest
	if max := float64(e.s.ParentSize); est > max {
		est = max
	}
	return est
}

// FreqEntry is one value with its estimated data-set frequency.
type FreqEntry[V comparable] struct {
	Value     V       `json:"value"`
	Estimated float64 `json:"estimated"` // estimated occurrences in the full data set
	InSample  int64   `json:"in_sample"` // occurrences in the sample
}

// TopK returns the k most frequent sample values with their frequencies
// scaled to data-set cardinality (N/n scaling). Ties break arbitrarily but
// deterministically.
func (e *Estimator[V]) TopK(k int) []FreqEntry[V] {
	if k <= 0 || e.s.Size() == 0 {
		return nil
	}
	scale := float64(e.s.ParentSize) / float64(e.s.Size())
	entries := make([]FreqEntry[V], 0, e.s.Hist.Distinct())
	e.s.Hist.Each(func(v V, c int64) {
		entries = append(entries, FreqEntry[V]{Value: v, Estimated: float64(c) * scale, InSample: c})
	})
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].InSample > entries[j].InSample })
	if k > len(entries) {
		k = len(entries)
	}
	return entries[:k]
}

// Diff returns the estimated difference a − b between two estimates derived
// from independent samples (e.g. this week's COUNT vs last week's), with the
// standard errors combined in quadrature. The 95% interval uses the normal
// critical value; pass estimates built at the same confidence level.
func Diff(a, b Estimate) Estimate {
	se := math.Sqrt(a.StdErr*a.StdErr + b.StdErr*b.StdErr)
	const z = 1.959963984540054
	v := a.Value - b.Value
	return Estimate{
		Value:  v,
		StdErr: se,
		Lo:     v - z*se,
		Hi:     v + z*se,
		Exact:  a.Exact && b.Exact,
	}
}

// GroupResult is one group's estimated aggregate.
type GroupResult[K comparable] struct {
	Key   K        `json:"key"`
	Count Estimate `json:"count"` // estimated number of data-set elements in the group
	Share Estimate `json:"share"` // estimated fraction of the data set in the group
}

// GroupBy estimates a GROUP BY COUNT(*) over the data set: values are
// assigned to groups by key, and each group's population count is estimated
// with its confidence interval. Groups are returned in decreasing estimated
// count; only groups observed in the sample appear (unseen groups are, by
// definition, estimated at zero).
func GroupBy[V comparable, K comparable](e *Estimator[V], key func(V) K) ([]GroupResult[K], error) {
	n := e.s.Size()
	if n == 0 {
		return nil, fmt.Errorf("estimate: empty sample")
	}
	counts := make(map[K]int64)
	e.s.Hist.Each(func(v V, c int64) { counts[key(v)] += c })
	N := float64(e.s.ParentSize)
	out := make([]GroupResult[K], 0, len(counts))
	for k, c := range counts {
		p := float64(c) / float64(n)
		se := math.Sqrt(p*(1-p)/float64(n)) * e.fpc()
		share := e.interval(p, se)
		if share.Lo < 0 {
			share.Lo = 0
		}
		if share.Hi > 1 {
			share.Hi = 1
		}
		cnt := e.interval(p*N, se*N)
		if cnt.Lo < 0 {
			cnt.Lo = 0
		}
		if cnt.Hi > N {
			cnt.Hi = N
		}
		out = append(out, GroupResult[K]{Key: k, Count: cnt, Share: share})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count.Value > out[j].Count.Value })
	return out, nil
}

// OrderedEstimator adds order-dependent queries for values with a total
// order supplied by less.
type OrderedEstimator[V comparable] struct {
	*Estimator[V]
	sorted []V // expanded sample, sorted ascending
}

// NewOrdered builds an ordered estimator; the expansion costs O(|S|) memory.
func NewOrdered[V comparable](s *core.Sample[V], less func(a, b V) bool) (*OrderedEstimator[V], error) {
	base, err := NewWithConfidence(s, 0.95)
	if err != nil {
		return nil, err
	}
	bag := s.Hist.Expand()
	sort.SliceStable(bag, func(i, j int) bool { return less(bag[i], bag[j]) })
	return &OrderedEstimator[V]{Estimator: base, sorted: bag}, nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the data set as the
// corresponding sample quantile.
func (e *OrderedEstimator[V]) Quantile(q float64) (V, error) {
	var zero V
	if len(e.sorted) == 0 {
		return zero, fmt.Errorf("estimate: empty sample")
	}
	if q < 0 || q > 1 {
		return zero, fmt.Errorf("estimate: quantile %v outside [0,1]", q)
	}
	idx := int(q * float64(len(e.sorted)-1))
	return e.sorted[idx], nil
}

// Median estimates the data-set median.
func (e *OrderedEstimator[V]) Median() (V, error) { return e.Quantile(0.5) }

// Quantiles estimates several quantiles at once; qs must each lie in [0,1].
func (e *OrderedEstimator[V]) Quantiles(qs ...float64) ([]V, error) {
	out := make([]V, len(qs))
	for i, q := range qs {
		v, err := e.Quantile(q)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EquiDepth returns the boundaries of a b-bucket equi-depth histogram of the
// data set, estimated from the sample: b−1 interior quantile boundaries such
// that each bucket holds roughly N/b elements. Building approximate
// equi-depth histograms is one of the classical uses of warehouse samples
// (query optimization statistics).
func (e *OrderedEstimator[V]) EquiDepth(b int) ([]V, error) {
	if b < 2 {
		return nil, fmt.Errorf("estimate: EquiDepth needs at least 2 buckets, got %d", b)
	}
	bounds := make([]V, 0, b-1)
	for i := 1; i < b; i++ {
		v, err := e.Quantile(float64(i) / float64(b))
		if err != nil {
			return nil, err
		}
		bounds = append(bounds, v)
	}
	return bounds, nil
}

// JoinSizeEstimate estimates the size of the natural (equality) join
// |A ⋈ B| = Σ_v f_A(v)·f_B(v) from two independent uniform samples, by the
// plug-in estimator Σ over commonly-sampled values of the scaled frequency
// product. This is the textbook sample-based join estimator (cf. the join
// synopses the paper cites [13]): unbiased-ish for frequent join keys but a
// systematic UNDERESTIMATE when many join keys are sampled in only one side
// — treat it as a lower-bound indicator for join-candidate screening, not a
// cardinality oracle.
func JoinSizeEstimate[V comparable](a, b *core.Sample[V]) (float64, error) {
	if a == nil || b == nil || a.Hist == nil || b.Hist == nil {
		return 0, fmt.Errorf("estimate: nil sample")
	}
	if a.Size() == 0 || b.Size() == 0 {
		return 0, fmt.Errorf("estimate: empty sample")
	}
	scaleA := float64(a.ParentSize) / float64(a.Size())
	scaleB := float64(b.ParentSize) / float64(b.Size())
	var total float64
	a.Hist.Each(func(v V, ca int64) {
		if cb := b.Hist.Count(v); cb > 0 {
			total += float64(ca) * scaleA * float64(cb) * scaleB
		}
	})
	return total, nil
}

// Resemblance holds value-set overlap estimates between two samples — the
// raw material of sampling-based metadata discovery (e.g. finding join
// candidates or fuzzy inclusion dependencies, paper [3], [15]).
type Resemblance struct {
	// Jaccard is |A ∩ B| / |A ∪ B| over the sampled distinct-value sets.
	Jaccard float64 `json:"jaccard"`
	// ContainmentAinB is |A ∩ B| / |A| (fraction of A's sampled values
	// also seen in B).
	ContainmentAinB float64 `json:"containment_a_in_b"`
	// ContainmentBinA is |A ∩ B| / |B|.
	ContainmentBinA float64 `json:"containment_b_in_a"`
	// CommonValues is the number of distinct values observed in both
	// samples.
	CommonValues int `json:"common_values"`
}

// ValueSetResemblance estimates the distinct-value overlap between the data
// sets behind two samples. These are sample-based plug-in estimates: exact
// when both samples are exhaustive, increasingly noisy for small sampling
// fractions.
func ValueSetResemblance[V comparable](a, b *core.Sample[V]) (Resemblance, error) {
	if a == nil || b == nil || a.Hist == nil || b.Hist == nil {
		return Resemblance{}, fmt.Errorf("estimate: nil sample")
	}
	da, db := a.Hist.Distinct(), b.Hist.Distinct()
	if da == 0 || db == 0 {
		return Resemblance{}, fmt.Errorf("estimate: empty sample")
	}
	var common int
	a.Hist.Each(func(v V, _ int64) {
		if b.Hist.Count(v) > 0 {
			common++
		}
	})
	union := da + db - common
	return Resemblance{
		Jaccard:         float64(common) / float64(union),
		ContainmentAinB: float64(common) / float64(da),
		ContainmentBinA: float64(common) / float64(db),
		CommonValues:    common,
	}, nil
}
