package estimate

import (
	"math"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/histogram"
)

func stratum(t *testing.T, kind core.Kind, parent int64, values map[int64]int64) *core.Sample[int64] {
	t.Helper()
	h := histogram.New[int64](histogram.SizeModel{ValueBytes: 8, CountBytes: 8})
	for v, c := range values {
		h.Insert(v, c)
	}
	return &core.Sample[int64]{Kind: kind, Hist: h, ParentSize: parent, Q: 1}
}

// TestPrunedBitIdentity is the estimator-level half of the pruning
// answer-preservation property: replacing an out-of-range stratum with a
// ZeroStratum of the same population yields bit-identical estimates.
func TestPrunedBitIdentity(t *testing.T) {
	inRange := stratum(t, core.ReservoirKind, 100, map[int64]int64{5: 3, 15: 2, 40: 5})
	alsoIn := stratum(t, core.BernoulliKind, 200, map[int64]int64{8: 4, 30: 6})
	outside := stratum(t, core.ReservoirKind, 150, map[int64]int64{500: 4, 600: 6})
	pred := func(v int64) bool { return v >= 0 && v <= 50 }

	full, err := core.NewStratified(inRange.Clone(), alsoIn.Clone(), outside.Clone())
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := core.NewStratified(inRange.Clone(), alsoIn.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, conf := range []float64{0.90, 0.95, 0.99} {
		ef, err := NewStratifiedWithConfidence(full, conf)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewStratifiedWithConfidence(pruned, conf)
		if err != nil {
			t.Fatal(err)
		}
		zeros := []ZeroStratum{{Pop: 150, Exhaustive: false}}

		cf, err1 := ef.CountPruned(pred, nil)
		cp, err2 := ep.CountPruned(pred, zeros)
		if err1 != nil || err2 != nil {
			t.Fatalf("count errs: %v %v", err1, err2)
		}
		if cf != cp {
			t.Fatalf("conf %v: count not bit-identical:\nfull   %+v\npruned %+v", conf, cf, cp)
		}

		ff, err1 := ef.FractionPruned(pred, nil)
		fp, err2 := ep.FractionPruned(pred, zeros)
		if err1 != nil || err2 != nil {
			t.Fatalf("fraction errs: %v %v", err1, err2)
		}
		if ff != fp {
			t.Fatalf("conf %v: fraction not bit-identical:\nfull   %+v\npruned %+v", conf, ff, fp)
		}
	}
}

// TestPrunedMatchesUnpruned checks CountPruned/FractionPruned degenerate to
// Count/Fraction with no zeros.
func TestPrunedMatchesUnpruned(t *testing.T) {
	s := stratum(t, core.ReservoirKind, 100, map[int64]int64{1: 5, 9: 5})
	st, err := core.NewStratified(s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(v int64) bool { return v < 5 }
	a, _ := e.Count(pred)
	b, _ := e.CountPruned(pred, nil)
	if a != b {
		t.Fatalf("CountPruned(nil) differs from Count: %+v vs %+v", a, b)
	}
	fa, _ := e.Fraction(pred)
	fb, _ := e.FractionPruned(pred, nil)
	if fa != fb {
		t.Fatalf("FractionPruned(nil) differs from Fraction: %+v vs %+v", fa, fb)
	}
}

// TestPrunedExactFlag: a pruned exhaustive stratum keeps exactness; a
// pruned sampled stratum clears it — matching what loading would do.
func TestPrunedExactFlag(t *testing.T) {
	ex := stratum(t, core.Exhaustive, 10, map[int64]int64{1: 10})
	st, err := core.NewStratified(ex)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(v int64) bool { return v < 5 }
	got, err := e.CountPruned(pred, []ZeroStratum{{Pop: 20, Exhaustive: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact {
		t.Fatalf("exhaustive zeros should stay exact: %+v", got)
	}
	got, err = e.CountPruned(pred, []ZeroStratum{{Pop: 20, Exhaustive: false}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Fatalf("sampled zeros must clear exactness: %+v", got)
	}
	// Fraction denominator includes the zero population: 10 of 30 match.
	frac, err := e.FractionPruned(pred, []ZeroStratum{{Pop: 20, Exhaustive: true}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.Value-10.0/30.0) > 1e-12 {
		t.Fatalf("fraction over zeros-inclusive total: %+v", frac)
	}
}

// TestBoundedProvenZeroDelegates: provenZero == 0 must be bit-identical to
// the PR 8 bounded estimators.
func TestBoundedProvenZeroDelegates(t *testing.T) {
	s := stratum(t, core.ReservoirKind, 100, map[int64]int64{1: 5, 9: 5})
	pred := func(v int64) bool { return v < 5 }
	a, err1 := BoundedFraction(s, pred, 0.95, 400)
	b, err2 := BoundedFractionProvenZero(s, pred, 0.95, 400, 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if a != b {
		t.Fatalf("provenZero=0 not identical: %+v vs %+v", a, b)
	}
	ca, _ := BoundedCount(s, pred, 0.95, 400)
	cb, _ := BoundedCountProvenZero(s, pred, 0.95, 400, 0)
	if ca != cb {
		t.Fatalf("count provenZero=0 not identical: %+v vs %+v", ca, cb)
	}
}

// TestBoundedProvenZeroTightens: proving part of the uncovered population
// zero shrinks Hi and the half-width, and never drops truth coverage.
func TestBoundedProvenZeroTightens(t *testing.T) {
	s := stratum(t, core.ReservoirKind, 100, map[int64]int64{1: 5, 9: 5})
	pred := func(v int64) bool { return v < 5 }
	base, err := BoundedFraction(s, pred, 0.95, 400)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := BoundedFractionProvenZero(s, pred, 0.95, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Hi >= base.Hi {
		t.Fatalf("proven zero did not tighten Hi: base %+v tight %+v", base, tight)
	}
	if HalfWidth(tight) >= HalfWidth(base) {
		t.Fatalf("half-width did not shrink: base %v tight %v", HalfWidth(base), HalfWidth(tight))
	}
	// Fully accounted population: unknown = 0.
	if tight.Lo > tight.Hi {
		t.Fatalf("inverted interval: %+v", tight)
	}
	// Count scaling.
	cnt, err := BoundedCountProvenZero(s, pred, 0.95, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt.Value-tight.Value*400) > 1e-9 {
		t.Fatalf("count scale mismatch: %+v vs %v", cnt, tight.Value*400)
	}
}

// TestProxyProvenZero: the proxy bound delegates at zero and tightens with
// proven-zero population.
func TestProxyProvenZero(t *testing.T) {
	z, err := ZCrit(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ProxyHalfWidthZ(50, 100, 400, z), ProxyHalfWidthProvenZeroZ(50, 100, 400, 0, z); a != b {
		t.Fatalf("delegation differs: %v vs %v", a, b)
	}
	base := ProxyHalfWidthZ(50, 100, 400, z)
	tight := ProxyHalfWidthProvenZeroZ(50, 100, 400, 200, z)
	if tight >= base {
		t.Fatalf("proxy did not tighten: %v vs %v", tight, base)
	}
	// All uncovered population proven zero → only sampling error remains.
	all := ProxyHalfWidthProvenZeroZ(50, 100, 400, 300, z)
	if all >= tight {
		t.Fatalf("full proven zero should be tightest: %v vs %v", all, tight)
	}
	// Nothing covered but everything proven zero → exact.
	if got := ProxyHalfWidthProvenZeroZ(0, 0, 400, 400, z); got != 0 {
		t.Fatalf("all-proven-zero proxy = %v, want 0", got)
	}
}
