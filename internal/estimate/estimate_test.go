package estimate

import (
	"math"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/randx"
)

// exhaustiveSample builds an exhaustive sample of [0, n).
func exhaustiveSample(t *testing.T, n int64) *core.Sample[int64] {
	t.Helper()
	hr := core.NewHR[int64](core.ConfigForNF(4*n), randx.New(1))
	for v := int64(0); v < n; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != core.Exhaustive {
		t.Fatal("setup: not exhaustive")
	}
	return s
}

// reservoirSample builds a size-k reservoir sample of [0, n).
func reservoirSample(t *testing.T, seed uint64, n, k int64) *core.Sample[int64] {
	t.Helper()
	hr := core.NewHR[int64](core.ConfigForNF(k), randx.New(seed))
	for v := int64(0); v < n; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCountExactOnExhaustive(t *testing.T) {
	s := exhaustiveSample(t, 1000)
	e := New(s)
	est, err := e.Count(func(v int64) bool { return v < 250 })
	if err != nil {
		t.Fatal(err)
	}
	if !est.Exact || est.Value != 250 || est.StdErr != 0 {
		t.Fatalf("est = %+v", est)
	}
	if est.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCountCoverageOnSRS(t *testing.T) {
	// Over many independent samples, the 95% CI must cover the truth
	// roughly 95% of the time (allow 90–99%).
	const n = 20000
	const k = 1024
	const truth = 5000.0 // elements < 5000
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		s := reservoirSample(t, uint64(trial)+10, n, k)
		e := New(s)
		est, err := e.Count(func(v int64) bool { return v < 5000 })
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo <= truth && truth <= est.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.995 {
		t.Fatalf("CI coverage %v, want ≈0.95", rate)
	}
}

func TestSumAndAvg(t *testing.T) {
	s := reservoirSample(t, 3, 10000, 2048)
	e := New(s)
	avg, err := e.Avg(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := 9999.0 / 2
	if math.Abs(avg.Value-wantAvg) > 5*avg.StdErr+1 {
		t.Fatalf("avg %v, want ~%v (se %v)", avg.Value, wantAvg, avg.StdErr)
	}
	sum, err := e.Sum(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	wantSum := wantAvg * 10000
	if math.Abs(sum.Value-wantSum) > 5*sum.StdErr+1 {
		t.Fatalf("sum %v, want ~%v", sum.Value, wantSum)
	}
	if math.Abs(sum.Value-avg.Value*10000) > 1e-6 {
		t.Fatal("sum != avg·N")
	}
}

func TestFractionBoundsClamped(t *testing.T) {
	s := reservoirSample(t, 4, 10000, 512)
	e := New(s)
	// Predicate true for almost everything → Hi must clamp to 1.
	est, err := e.Fraction(func(v int64) bool { return v >= 0 })
	if err != nil {
		t.Fatal(err)
	}
	if est.Hi > 1 || est.Lo < 0 {
		t.Fatalf("bounds not clamped: %+v", est)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	s := reservoirSample(t, 5, 10000, 512)
	s.Hist.Reset()
	e := New(s)
	if _, err := e.Count(func(int64) bool { return true }); err == nil {
		t.Error("empty sample Count accepted")
	}
	if _, err := e.Avg(func(int64) float64 { return 0 }); err == nil {
		t.Error("empty sample Avg accepted")
	}
}

func TestNewWithConfidenceValidation(t *testing.T) {
	s := exhaustiveSample(t, 10)
	if _, err := NewWithConfidence(s, 0.5); err == nil {
		t.Error("unsupported confidence accepted")
	}
	if _, err := NewWithConfidence[int64](nil, 0.95); err == nil {
		t.Error("nil sample accepted")
	}
	for _, c := range []float64{0.90, 0.95, 0.99} {
		if _, err := NewWithConfidence(s, c); err != nil {
			t.Errorf("confidence %v rejected: %v", c, err)
		}
	}
}

func TestDistinctEstimators(t *testing.T) {
	// Population: 3000 distinct values each occurring 5 times.
	hb := core.NewHB[int64](core.ConfigForNF(2048), 15000, randx.New(6))
	for rep := 0; rep < 5; rep++ {
		for v := int64(0); v < 3000; v++ {
			hb.Feed(v)
		}
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	e := New(s)
	naive := float64(e.DistinctNaive())
	chao := e.DistinctChao1()
	gee := e.DistinctGEE()
	if naive > 3000 {
		t.Fatalf("naive %v exceeds truth", naive)
	}
	if chao < naive {
		t.Fatalf("Chao1 %v below naive %v", chao, naive)
	}
	// Both estimators should be much closer to the truth than the naive
	// count for this undersampled population.
	if math.Abs(chao-3000) > 3000*0.5 {
		t.Errorf("Chao1 = %v, truth 3000", chao)
	}
	if math.Abs(gee-3000) > 3000*0.5 {
		t.Errorf("GEE = %v, truth 3000", gee)
	}
}

func TestDistinctExactOnExhaustive(t *testing.T) {
	s := exhaustiveSample(t, 500)
	e := New(s)
	if e.DistinctChao1() != 500 || e.DistinctGEE() != 500 || e.DistinctNaive() != 500 {
		t.Fatalf("exhaustive distinct estimates: %v %v %v",
			e.DistinctChao1(), e.DistinctGEE(), e.DistinctNaive())
	}
}

func TestTopK(t *testing.T) {
	// Skewed exhaustive data: value v occurs (10-v) times for v in 0..9.
	hr := core.NewHR[int64](core.ConfigForNF(1024), randx.New(7))
	for v := int64(0); v < 10; v++ {
		hr.FeedN(v, 10-v)
	}
	s, _ := hr.Finalize()
	e := New(s)
	top := e.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	if top[0].Value != 0 || top[0].InSample != 10 || top[0].Estimated != 10 {
		t.Fatalf("top entry %+v", top[0])
	}
	if top[1].Value != 1 || top[2].Value != 2 {
		t.Fatalf("order wrong: %+v", top)
	}
	if e.TopK(0) != nil {
		t.Fatal("TopK(0) != nil")
	}
	if got := e.TopK(100); len(got) != 10 {
		t.Fatalf("TopK over-asks: %d", len(got))
	}
}

func TestQuantiles(t *testing.T) {
	s := reservoirSample(t, 8, 100000, 4096)
	oe, err := NewOrdered(s, func(a, b int64) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	med, err := oe.Median()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(med)-50000) > 5000 {
		t.Fatalf("median %d, want ~50000", med)
	}
	q90, err := oe.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(q90)-90000) > 5000 {
		t.Fatalf("q90 %d, want ~90000", q90)
	}
	if _, err := oe.Quantile(-0.1); err == nil {
		t.Error("negative quantile accepted")
	}
	if _, err := oe.Quantile(1.5); err == nil {
		t.Error("quantile > 1 accepted")
	}
}

func TestValueSetResemblance(t *testing.T) {
	a := exhaustiveSample(t, 100) // values 0..99
	bs := core.NewHR[int64](core.ConfigForNF(4096), randx.New(9))
	for v := int64(50); v < 150; v++ {
		bs.Feed(v)
	}
	b, _ := bs.Finalize()
	r, err := ValueSetResemblance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.CommonValues != 50 {
		t.Fatalf("common = %d", r.CommonValues)
	}
	if math.Abs(r.Jaccard-50.0/150) > 1e-12 {
		t.Fatalf("jaccard = %v", r.Jaccard)
	}
	if math.Abs(r.ContainmentAinB-0.5) > 1e-12 || math.Abs(r.ContainmentBinA-0.5) > 1e-12 {
		t.Fatalf("containments %v %v", r.ContainmentAinB, r.ContainmentBinA)
	}
}

func TestValueSetResemblanceErrors(t *testing.T) {
	a := exhaustiveSample(t, 10)
	if _, err := ValueSetResemblance[int64](a, nil); err == nil {
		t.Error("nil sample accepted")
	}
	empty := exhaustiveSample(t, 10)
	empty.Hist.Reset()
	if _, err := ValueSetResemblance(a, empty); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestEstimatesFromMergedWarehouseSample(t *testing.T) {
	// End-to-end: partitioned sampling, merge, then estimate — the full
	// warehouse analytics loop, checked against ground truth.
	rng := randx.New(10)
	cfg := core.ConfigForNF(2048)
	const parts = 16
	const per = 4096
	var samples []*core.Sample[int64]
	for i := int64(0); i < parts; i++ {
		hr := core.NewHR[int64](cfg, rng.Split())
		for v := i * per; v < (i+1)*per; v++ {
			hr.Feed(v)
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	m, err := core.MergeTree(samples, core.HRMerge, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := New(m)
	est, err := e.Count(func(v int64) bool { return v%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(parts*per) / 2
	if math.Abs(est.Value-truth) > 6*est.StdErr+1 {
		t.Fatalf("count %v ± %v, truth %v", est.Value, est.StdErr, truth)
	}
}

func TestGroupBy(t *testing.T) {
	// Exhaustive data with three groups of known sizes.
	hr := core.NewHR[int64](core.ConfigForNF(4096), randx.New(20))
	for i := int64(0); i < 600; i++ {
		hr.Feed(i % 3) // groups 0,1,2 each 200 elements
	}
	s, _ := hr.Finalize()
	e := New(s)
	groups, err := GroupBy(e, func(v int64) int64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	for _, g := range groups {
		if !g.Count.Exact || g.Count.Value != 200 {
			t.Fatalf("group %d: %+v", g.Key, g.Count)
		}
		if math.Abs(g.Share.Value-1.0/3) > 1e-12 {
			t.Fatalf("group %d share %v", g.Key, g.Share.Value)
		}
	}
}

func TestGroupBySampledCalibration(t *testing.T) {
	// Sampled data: skewed groups; estimates must track truth within CI.
	s := reservoirSample(t, 21, 30000, 2048)
	e := New(s)
	// Group by decile: group g holds values [3000g, 3000(g+1)).
	groups, err := GroupBy(e, func(v int64) int64 { return v / 3000 })
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("%d groups", len(groups))
	}
	for _, g := range groups {
		if math.Abs(g.Count.Value-3000) > 6*g.Count.StdErr+1 {
			t.Fatalf("group %d count %v ± %v, truth 3000", g.Key, g.Count.Value, g.Count.StdErr)
		}
	}
	// Sorted by decreasing estimate.
	for i := 1; i < len(groups); i++ {
		if groups[i].Count.Value > groups[i-1].Count.Value {
			t.Fatal("groups not sorted")
		}
	}
}

func TestGroupByEmptySample(t *testing.T) {
	s := reservoirSample(t, 22, 1000, 64)
	s.Hist.Reset()
	if _, err := GroupBy(New(s), func(v int64) int64 { return v }); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestDiff(t *testing.T) {
	a := Estimate{Value: 100, StdErr: 3, Lo: 94.1, Hi: 105.9}
	b := Estimate{Value: 60, StdErr: 4, Lo: 52.2, Hi: 67.8}
	d := Diff(a, b)
	if d.Value != 40 {
		t.Fatalf("value %v", d.Value)
	}
	if math.Abs(d.StdErr-5) > 1e-12 {
		t.Fatalf("stderr %v, want 5 (3-4-5)", d.StdErr)
	}
	if d.Exact {
		t.Fatal("non-exact inputs marked exact")
	}
	e := Diff(Estimate{Value: 10, Exact: true}, Estimate{Value: 4, Exact: true})
	if !e.Exact || e.Value != 6 || e.StdErr != 0 {
		t.Fatalf("exact diff: %+v", e)
	}
}

func TestDiffCoverageDayOverDay(t *testing.T) {
	// Two independent samples of populations with known count difference;
	// the Diff CI must cover the true difference at roughly nominal rate.
	const trials = 300
	covered := 0
	for trial := 0; trial < trials; trial++ {
		sa := reservoirSample(t, uint64(trial)*2+100, 20000, 1024) // 5000 below 5000
		sb := reservoirSample(t, uint64(trial)*2+101, 30000, 1024) // 5000 below 5000
		ca, err := New(sa).Count(func(v int64) bool { return v < 5000 })
		if err != nil {
			t.Fatal(err)
		}
		cb, err := New(sb).Count(func(v int64) bool { return v < 5000 })
		if err != nil {
			t.Fatal(err)
		}
		d := Diff(ca, cb)
		if d.Lo <= 0 && 0 <= d.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 || rate > 1.0 {
		t.Fatalf("diff CI coverage %v", rate)
	}
}

func TestQuantilesAndEquiDepth(t *testing.T) {
	s := reservoirSample(t, 30, 100000, 4096)
	oe, err := NewOrdered(s, func(a, b int64) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	qs, err := oe.Quantiles(0.25, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{25000, 50000, 75000}
	for i, q := range qs {
		if math.Abs(float64(q)-wants[i]) > 5000 {
			t.Errorf("quantile %d: %d, want ~%v", i, q, wants[i])
		}
	}
	bounds, err := oe.EquiDepth(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 3 {
		t.Fatalf("%d bounds", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatal("bounds not monotone")
		}
	}
	if _, err := oe.EquiDepth(1); err == nil {
		t.Error("b=1 accepted")
	}
	if _, err := oe.Quantiles(0.5, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}

func TestJoinSizeEstimateExhaustive(t *testing.T) {
	// Exhaustive samples give the exact join size.
	mk := func(counts map[int64]int64, seed uint64) *core.Sample[int64] {
		hr := core.NewHR[int64](core.ConfigForNF(4096), randx.New(seed))
		for v, c := range counts {
			hr.FeedN(v, c)
		}
		s, _ := hr.Finalize()
		if s.Kind != core.Exhaustive {
			t.Fatal("setup: not exhaustive")
		}
		return s
	}
	a := mk(map[int64]int64{1: 2, 2: 3, 3: 1}, 1)
	b := mk(map[int64]int64{2: 4, 3: 5, 4: 7}, 2)
	got, err := JoinSizeEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3*4 + 1*5) // keys 2 and 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("join size %v, want %v", got, want)
	}
}

func TestJoinSizeEstimateSampledFKJoin(t *testing.T) {
	// FK join: every fk value hits exactly one pk row, so |A ⋈ B| = |A|.
	// Dense domain so sampled intersections are plentiful.
	const domain = 2000
	const nA = 100000
	pk := core.NewHR[int64](core.ConfigForNF(1024), randx.New(3))
	for v := int64(1); v <= domain; v++ {
		pk.Feed(v)
	}
	pkS, _ := pk.Finalize()
	fk := core.NewHR[int64](core.ConfigForNF(1024), randx.New(4))
	for i := int64(0); i < nA; i++ {
		fk.Feed(i%domain + 1)
	}
	fkS, _ := fk.Finalize()
	got, err := JoinSizeEstimate(fkS, pkS)
	if err != nil {
		t.Fatal(err)
	}
	// Expected |join| = nA; the plug-in estimator over two ~50% samples
	// recovers roughly intersection-fraction × truth. Accept a broad band
	// around truth (the documented bias is downward).
	if got < float64(nA)*0.1 || got > float64(nA)*2 {
		t.Fatalf("join estimate %v, truth %d", got, nA)
	}
}

func TestJoinSizeEstimateErrors(t *testing.T) {
	a := exhaustiveSample(t, 10)
	if _, err := JoinSizeEstimate[int64](a, nil); err == nil {
		t.Error("nil accepted")
	}
	empty := exhaustiveSample(t, 10)
	empty.Hist.Reset()
	if _, err := JoinSizeEstimate(a, empty); err == nil {
		t.Error("empty accepted")
	}
}
