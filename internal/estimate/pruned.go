package estimate

import (
	"fmt"
	"math"

	"samplewh/internal/core"
)

// Sketch-assisted pruning arithmetic (DESIGN.md §15). A range predicate
// evaluated stratum-by-stratum lets a partition whose sketch proves
// "no value in [lo,hi]" contribute without being loaded: its stratum total
// is exactly N_h·0 and its variance term exactly 0, which are the additive
// identities of the stratified expansion. Skipping the stratum and instead
// accounting its population in N_total therefore yields *bit-identical*
// floating-point results to loading it — the property the pruning
// answer-preservation test asserts.

// ZeroStratum is a partition proven (by its sketch sidecar) to contribute
// zero matches to a range predicate. Pop joins the population total;
// Exhaustive carries the companion sample's kind into the estimator's
// exactness, exactly as a loaded stratum's Kind would.
type ZeroStratum struct {
	Pop        int64
	Exhaustive bool
}

// NewStratifiedWithConfidence builds a stratified estimator at an explicit
// confidence level (0.90, 0.95, or 0.99).
func NewStratifiedWithConfidence[V comparable](st *core.Stratified[V], confidence float64) (*StratifiedEstimator[V], error) {
	if st == nil || st.NumStrata() == 0 {
		return nil, fmt.Errorf("estimate: nil or empty stratified sample")
	}
	z, err := zCrit(confidence)
	if err != nil {
		return nil, err
	}
	return &StratifiedEstimator[V]{st: st, z: z}, nil
}

// totalWithZeros is N_total across loaded strata and proven-zero strata.
// Integer addition keeps the total independent of which strata were pruned.
func (e *StratifiedEstimator[V]) totalWithZeros(zeros []ZeroStratum) int64 {
	total := e.st.ParentSize()
	for _, z := range zeros {
		total += z.Pop
	}
	return total
}

// CountPruned estimates the number of elements satisfying pred across the
// loaded strata plus the proven-zero strata. When zeros is empty it is
// exactly Count.
func (e *StratifiedEstimator[V]) CountPruned(pred func(V) bool, zeros []ZeroStratum) (Estimate, error) {
	est, err := e.Sum(func(v V) float64 {
		if pred(v) {
			return 1
		}
		return 0
	})
	if err != nil {
		return Estimate{}, err
	}
	// Proven-zero strata add exact zeros to the total and variance (no-ops
	// bit for bit); only the exactness flag can flip, just as a loaded
	// non-exhaustive stratum would flip it.
	for _, z := range zeros {
		if !z.Exhaustive {
			est.Exact = false
		}
	}
	if est.Lo < 0 {
		est.Lo = 0
	}
	if max := float64(e.totalWithZeros(zeros)); est.Hi > max {
		est.Hi = max
	}
	return est, nil
}

// FractionPruned estimates the fraction of elements satisfying pred over
// the union of loaded and proven-zero strata. When zeros is empty it is
// exactly Fraction.
func (e *StratifiedEstimator[V]) FractionPruned(pred func(V) bool, zeros []ZeroStratum) (Estimate, error) {
	cnt, err := e.CountPruned(pred, zeros)
	if err != nil {
		return Estimate{}, err
	}
	N := float64(e.totalWithZeros(zeros))
	out := Estimate{
		Value:  cnt.Value / N,
		StdErr: cnt.StdErr / N,
		Lo:     cnt.Lo / N,
		Hi:     cnt.Hi / N,
		Exact:  cnt.Exact,
	}
	if out.Hi > 1 {
		out.Hi = 1
	}
	return out, nil
}

// BoundedFractionProvenZero extends BoundedFraction with a proven-zero
// population term: totalPop elements are requested, s covers s.ParentSize
// of them, provenZero of them are sketch-proven to contribute no matches,
// and only the remainder is truly unknown:
//
//	p_total ∈ [w·p_lo , w·p_hi + u]   w = covered/total, u = unknown/total
//
// With provenZero == 0 it delegates to BoundedFraction unchanged (the two
// formulas agree algebraically but not bit-for-bit, and the zero-pruning
// case must stay byte-identical to the pre-sketch path).
func BoundedFractionProvenZero[V comparable](s *core.Sample[V], pred func(V) bool, confidence float64, totalPop, provenZero int64) (Estimate, error) {
	if provenZero <= 0 {
		return BoundedFraction(s, pred, confidence, totalPop)
	}
	e, err := NewWithConfidence(s, confidence)
	if err != nil {
		return Estimate{}, err
	}
	est, err := e.Fraction(pred)
	if err != nil {
		return Estimate{}, err
	}
	covered := s.ParentSize
	if totalPop <= covered {
		return est, nil
	}
	unknown := totalPop - covered - provenZero
	if unknown < 0 {
		unknown = 0
	}
	w := float64(covered) / float64(totalPop)
	u := float64(unknown) / float64(totalPop)
	est.StdErr *= w
	est.Lo = w * est.Lo
	est.Hi = w*est.Hi + u
	if est.Hi > 1 {
		est.Hi = 1
	}
	// Exact only if nothing is genuinely unknown and the covered estimate
	// was exact (the proven-zero strata contribute exactly zero matches).
	est.Exact = est.Exact && unknown == 0
	return est, nil
}

// BoundedCountProvenZero is BoundedFractionProvenZero scaled to a count
// over totalPop elements; with provenZero == 0 it delegates to BoundedCount.
func BoundedCountProvenZero[V comparable](s *core.Sample[V], pred func(V) bool, confidence float64, totalPop, provenZero int64) (Estimate, error) {
	if provenZero <= 0 {
		return BoundedCount(s, pred, confidence, totalPop)
	}
	frac, err := BoundedFractionProvenZero[V](s, pred, confidence, totalPop, provenZero)
	if err != nil {
		return Estimate{}, err
	}
	n := float64(totalPop)
	return Estimate{
		Value:  frac.Value * n,
		StdErr: frac.StdErr * n,
		Lo:     frac.Lo * n,
		Hi:     frac.Hi * n,
		Exact:  frac.Exact,
	}, nil
}

// ProxyHalfWidthProvenZeroZ extends ProxyHalfWidthZ with a proven-zero
// population: zero-proven partitions tighten the ignorance term from
// (1−w)/2 to unknown/(2·total) because their contribution is known exactly.
// With provenZero ≤ 0 it delegates to ProxyHalfWidthZ unchanged.
func ProxyHalfWidthProvenZeroZ(n, coveredPop, totalPop, provenZero int64, z float64) float64 {
	if provenZero <= 0 {
		return ProxyHalfWidthZ(n, coveredPop, totalPop, z)
	}
	if coveredPop <= 0 || totalPop <= 0 {
		// Everything answerable is proven zero: the answer is exact 0 when
		// the zeros cover the request, otherwise only the unknown remains.
		if totalPop > 0 && provenZero >= totalPop {
			return 0
		}
		if totalPop > 0 {
			return float64(totalPop-provenZero) / float64(totalPop) / 2
		}
		return 0.5
	}
	if n > coveredPop {
		n = coveredPop
	}
	var se float64
	if n > 0 && n < coveredPop {
		se = math.Sqrt(0.25 / float64(n))
		if coveredPop > 1 {
			se *= math.Sqrt(float64(coveredPop-n) / float64(coveredPop-1))
		}
	}
	unknown := totalPop - coveredPop - provenZero
	if unknown < 0 {
		unknown = 0
	}
	w := float64(coveredPop) / float64(totalPop)
	return w*z*se + float64(unknown)/float64(totalPop)/2
}
