package estimate

import (
	"math"

	"samplewh/internal/core"
)

// Bounded-query arithmetic (DESIGN.md §14). A planner-chosen subset of
// partitions yields a uniform sample of the *covered* union (Theorem 1), so
// the covered-union estimate carries an ordinary SRS interval. Extending the
// answer to the full requested population adds a second, non-sampling error
// term: the uncovered population can contribute anywhere between "no match"
// and "all match". For selectivity-style aggregates (fraction, count) both
// terms are bounded, which is what makes maxerr a guarantee rather than a
// heuristic:
//
//	p_total ∈ [w·p_lo , w·p_hi + (1−w)]   where w = covered/total
//
// The fraction-scale half-width w·z·se + (1−w)/2 shrinks monotonically as
// coverage grows and reduces to the ordinary interval at full coverage —
// loading more partitions buys a tighter answer, and the executor stops as
// soon as the width meets the bound.

// HalfWidth is the fraction-scale half-width of an estimate's interval.
func HalfWidth(e Estimate) float64 { return (e.Hi - e.Lo) / 2 }

// BoundedFraction estimates the predicate selectivity over a requested
// population of totalPop elements from a sample covering only s.ParentSize of
// them. The interval combines the covered-union sampling interval with the
// worst-case contribution of the uncovered remainder; at full coverage
// (totalPop ≤ s.ParentSize) it is exactly Fraction.
func BoundedFraction[V comparable](s *core.Sample[V], pred func(V) bool, confidence float64, totalPop int64) (Estimate, error) {
	e, err := NewWithConfidence(s, confidence)
	if err != nil {
		return Estimate{}, err
	}
	est, err := e.Fraction(pred)
	if err != nil {
		return Estimate{}, err
	}
	covered := s.ParentSize
	if totalPop <= covered {
		return est, nil
	}
	w := float64(covered) / float64(totalPop)
	est.StdErr *= w
	est.Lo = w * est.Lo
	est.Hi = w*est.Hi + (1 - w)
	est.Exact = false // the uncovered remainder is never exact
	return est, nil
}

// BoundedCount is BoundedFraction scaled to a count over totalPop elements.
// Its fraction-scale half-width (for maxerr checks) is HalfWidth(est)/totalPop.
func BoundedCount[V comparable](s *core.Sample[V], pred func(V) bool, confidence float64, totalPop int64) (Estimate, error) {
	frac, err := BoundedFraction[V](s, pred, confidence, totalPop)
	if err != nil {
		return Estimate{}, err
	}
	n := float64(totalPop)
	return Estimate{
		Value:  frac.Value * n,
		StdErr: frac.StdErr * n,
		Lo:     frac.Lo * n,
		Hi:     frac.Hi * n,
		Exact:  frac.Exact,
	}, nil
}

// ProxyHalfWidth is the query-agnostic fraction-scale half-width of a merged
// sample of size n covering coveredPop out of totalPop elements: the
// worst-case (p=1/2) proportion interval over the covered union plus the
// uncovered-coverage term. Because p(1−p) ≤ 1/4, it upper-bounds the width of
// any BoundedFraction answer from the same sample, so the planner and the
// shard-local sample path can use it without knowing the predicate.
func ProxyHalfWidth(n, coveredPop, totalPop int64, confidence float64) (float64, error) {
	z, err := zCrit(confidence)
	if err != nil {
		return 0, err
	}
	return ProxyHalfWidthZ(n, coveredPop, totalPop, z), nil
}

// ProxyHalfWidthZ is ProxyHalfWidth with the critical value precomputed
// (see ZCrit); the planner calls it per simulated step.
func ProxyHalfWidthZ(n, coveredPop, totalPop int64, z float64) float64 {
	if coveredPop <= 0 || totalPop <= 0 {
		return math.Inf(1) // nothing covered: unbounded uncertainty
	}
	if n > coveredPop {
		n = coveredPop
	}
	var se float64
	if n > 0 && n < coveredPop {
		se = math.Sqrt(0.25 / float64(n))
		if coveredPop > 1 {
			se *= math.Sqrt(float64(coveredPop-n) / float64(coveredPop-1))
		}
	}
	w := 1.0
	if totalPop > coveredPop {
		w = float64(coveredPop) / float64(totalPop)
	}
	return w*z*se + (1-w)/2
}

// ZCrit exposes the two-sided normal critical value for a supported
// confidence level (0.90, 0.95, 0.99) to the planner.
func ZCrit(confidence float64) (float64, error) { return zCrit(confidence) }
