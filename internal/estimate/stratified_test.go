package estimate

import (
	"math"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/randx"
)

// stratifiedFixture builds a stratified sample with strata of very
// different value ranges (where stratification should shine).
func stratifiedFixture(t *testing.T, seed uint64) (*core.Stratified[int64], float64, float64) {
	t.Helper()
	r := randx.New(seed)
	cfg := core.ConfigForNF(512)
	var strata []*core.Sample[int64]
	var truthSum float64
	var truthN float64
	// Stratum h holds 10000 values clustered near h*1000.
	for h := int64(0); h < 4; h++ {
		hr := core.NewHR[int64](cfg, r.Split())
		for i := int64(0); i < 10000; i++ {
			v := h*1000 + i%100
			hr.Feed(v)
			truthSum += float64(v)
			truthN++
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		strata = append(strata, s)
	}
	st, err := core.NewStratified(strata...)
	if err != nil {
		t.Fatal(err)
	}
	return st, truthSum, truthN
}

func TestStratifiedSumAndAvg(t *testing.T) {
	st, truthSum, truthN := stratifiedFixture(t, 1)
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Sum(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Value-truthSum) > 6*sum.StdErr+1 {
		t.Fatalf("sum %v ± %v, truth %v", sum.Value, sum.StdErr, truthSum)
	}
	avg, err := e.Avg(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Value-truthSum/truthN) > 6*avg.StdErr+0.1 {
		t.Fatalf("avg %v, truth %v", avg.Value, truthSum/truthN)
	}
}

func TestStratifiedCountAndFraction(t *testing.T) {
	st, _, truthN := stratifiedFixture(t, 2)
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	// Predicate: values in stratum 0's range (v < 1000): exactly 10000.
	cnt, err := e.Count(func(v int64) bool { return v < 1000 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt.Value-10000) > 6*cnt.StdErr+1 {
		t.Fatalf("count %v ± %v, truth 10000", cnt.Value, cnt.StdErr)
	}
	frac, err := e.Fraction(func(v int64) bool { return v < 1000 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.Value-10000/truthN) > 0.05 {
		t.Fatalf("fraction %v", frac.Value)
	}
	if frac.Hi > 1 || frac.Lo < 0 {
		t.Fatalf("fraction bounds %v..%v", frac.Lo, frac.Hi)
	}
}

func TestStratifiedTighterThanMergedForSeparatedStrata(t *testing.T) {
	// With strata centred far apart, the stratified SUM standard error must
	// beat the merged-sample standard error (between-strata variance is
	// eliminated). Compare analytically computed StdErrs.
	st, _, _ := stratifiedFixture(t, 3)
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	stratSum, err := e.Sum(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	// Merged sample of the same strata (consumes clones).
	var clones []*core.Sample[int64]
	for _, s := range st.Strata() {
		clones = append(clones, s.Clone())
	}
	r := randx.New(4)
	m, err := core.MergeTree(clones, core.HRMerge, r)
	if err != nil {
		t.Fatal(err)
	}
	mergedSum, err := New(m).Sum(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if stratSum.StdErr >= mergedSum.StdErr {
		t.Fatalf("stratified se %v not tighter than merged se %v (merged sample is 4x smaller but between-strata variance dominates)",
			stratSum.StdErr, mergedSum.StdErr)
	}
}

func TestStratifiedExactWhenAllExhaustive(t *testing.T) {
	r := randx.New(5)
	cfg := core.ConfigForNF(1 << 16)
	var strata []*core.Sample[int64]
	for h := int64(0); h < 3; h++ {
		hr := core.NewHR[int64](cfg, r.Split())
		for i := int64(0); i < 100; i++ {
			hr.Feed(h*100 + i)
		}
		s, _ := hr.Finalize()
		strata = append(strata, s)
	}
	st, err := core.NewStratified(strata...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Sum(func(v int64) float64 { return float64(v) })
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Exact || sum.StdErr != 0 {
		t.Fatalf("exhaustive strata not exact: %+v", sum)
	}
	// Truth: sum of 0..299 = 299*300/2.
	if sum.Value != 299*300/2 {
		t.Fatalf("sum = %v", sum.Value)
	}
}

func TestStratifiedErrors(t *testing.T) {
	if _, err := NewStratified[int64](nil); err == nil {
		t.Fatal("nil stratified accepted")
	}
	st, _, _ := stratifiedFixture(t, 6)
	st.Strata()[1].Hist.Reset()
	e, err := NewStratified(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sum(func(v int64) float64 { return float64(v) }); err == nil {
		t.Fatal("empty stratum accepted")
	}
}
