package sketch

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/histogram"
)

func buildFrom(values []int64) *Summary {
	b := NewBuilder()
	for _, v := range values {
		b.Add(v)
	}
	return b.Summary()
}

func TestBuilderBasics(t *testing.T) {
	s := buildFrom([]int64{5, 3, 9, 3, 7})
	if s.Count != 5 || s.Observed != 5 {
		t.Fatalf("count=%d observed=%d, want 5,5", s.Count, s.Observed)
	}
	if s.Min != 3 || s.Max != 9 {
		t.Fatalf("min=%d max=%d, want 3,9", s.Min, s.Max)
	}
	if want := 5.0 + 3 + 9 + 3 + 7; s.Sum != want {
		t.Fatalf("sum=%v want %v", s.Sum, want)
	}
	if got := s.DistinctEstimate(); got != 4 {
		t.Fatalf("unsaturated distinct=%v want 4 (exact)", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewBuilder().Summary()
	if err := s.Validate(); err != nil {
		t.Fatalf("empty summary invalid: %v", err)
	}
	if s.ProvablyOutside(math.MinInt64, math.MaxInt64) {
		t.Fatal("empty summary must never prune")
	}
	if got := s.DistinctEstimate(); got != 0 {
		t.Fatalf("empty distinct=%v", got)
	}
	// Merging with an empty summary is an identity on bounds.
	other := buildFrom([]int64{1, 2, 3})
	m := Merge(s, other)
	if m.Min != 1 || m.Max != 3 || m.Count != 3 {
		t.Fatalf("empty-merge changed bounds: %+v", m)
	}
}

func TestProvablyOutsideAndOverlap(t *testing.T) {
	s := buildFrom([]int64{100, 150, 200})
	cases := []struct {
		lo, hi  int64
		outside bool
	}{
		{0, 99, true},
		{201, 500, true},
		{0, 100, false},
		{200, 300, false},
		{120, 130, false}, // min/max cannot prove interior gaps
	}
	for _, c := range cases {
		if got := s.ProvablyOutside(c.lo, c.hi); got != c.outside {
			t.Errorf("ProvablyOutside(%d,%d)=%v want %v", c.lo, c.hi, got, c.outside)
		}
	}
	if w := s.RangeOverlap(0, 99); w != 0 {
		t.Errorf("overlap outside=%v want 0", w)
	}
	if w := s.RangeOverlap(100, 200); w != 1 {
		t.Errorf("overlap full=%v want 1", w)
	}
	if w := s.RangeOverlap(100, 149); w <= 0 || w >= 1 {
		t.Errorf("partial overlap=%v want in (0,1)", w)
	}
}

// TestKMVUnionMatchesDirect is the KMV merge law: the union of two sketches
// equals the sketch built in one pass over the concatenated stream.
func TestKMVUnionMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]int64, 5000)
	b := make([]int64, 5000)
	for i := range a {
		a[i] = rng.Int63n(20000)
		b[i] = rng.Int63n(20000) // overlapping value domains
	}
	sa, sb := buildFrom(a), buildFrom(b)
	direct := buildFrom(append(append([]int64(nil), a...), b...))
	merged := Merge(sa, sb)
	if len(merged.KMV) != len(direct.KMV) {
		t.Fatalf("KMV sizes differ: merged %d direct %d", len(merged.KMV), len(direct.KMV))
	}
	for i := range merged.KMV {
		if merged.KMV[i] != direct.KMV[i] {
			t.Fatalf("KMV[%d]: merged %d direct %d", i, merged.KMV[i], direct.KMV[i])
		}
	}
	if merged.Count != direct.Count || merged.Min != direct.Min || merged.Max != direct.Max ||
		merged.Sum != direct.Sum {
		t.Fatalf("scalar merge mismatch: merged %+v direct %+v", merged, direct)
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged invalid: %v", err)
	}
}

func TestDistinctEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const distinct = 50000
	b := NewBuilder()
	for i := 0; i < distinct; i++ {
		v := int64(i)
		// Feed duplicates too; KMV must be count-insensitive.
		for r := 0; r <= rng.Intn(3); r++ {
			b.Add(v)
		}
	}
	s := b.Summary()
	if !s.Saturated() {
		t.Fatal("sketch should saturate at 50k distinct")
	}
	est := s.DistinctEstimate()
	relErr := math.Abs(est-distinct) / distinct
	// RSE ≈ 1/sqrt(K-2) ≈ 6.3%; allow 4 sigma.
	if relErr > 0.25 {
		t.Fatalf("distinct estimate %v for true %d (rel err %.3f)", est, distinct, relErr)
	}
}

func TestHeavyHittersBounds(t *testing.T) {
	// Zipf-ish stream: value v occurs 10000/v times for v in 1..200.
	b := NewBuilderSized(DefaultKMVK, 8)
	truth := map[int64]int64{}
	for v := int64(1); v <= 200; v++ {
		n := 10000 / v
		truth[v] = n
		b.AddN(v, n)
	}
	s := b.Summary()
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	top := s.TopK(4)
	if len(top) != 4 {
		t.Fatalf("topk returned %d entries", len(top))
	}
	// Space-saving guarantee: estimated count bounds the true count from
	// above, and undershoots by at most Err.
	for _, h := range top {
		tc := truth[h.Value]
		if h.Count < tc {
			t.Errorf("value %d: estimate %d below truth %d", h.Value, h.Count, tc)
		}
		if h.Count-h.Err > tc {
			t.Errorf("value %d: guaranteed count %d exceeds truth %d", h.Value, h.Count-h.Err, tc)
		}
	}
	// The top-1 value (v=1, 10000 occurrences) must be identified.
	if top[0].Value != 1 {
		t.Errorf("top-1 value = %d, want 1", top[0].Value)
	}
}

func TestHeavyMergeBounds(t *testing.T) {
	// Two streams with different heavy values; merged bounds must still
	// hold as upper bounds on true combined counts.
	b1 := NewBuilderSized(64, 4)
	b2 := NewBuilderSized(64, 4)
	truth := map[int64]int64{}
	add := func(b *Builder, v, n int64) {
		b.AddN(v, n)
		truth[v] += n
	}
	add(b1, 1, 500)
	add(b1, 2, 300)
	add(b1, 3, 100)
	add(b1, 4, 80)
	add(b1, 5, 60) // evicts: floor rises
	add(b2, 1, 200)
	add(b2, 6, 400)
	add(b2, 7, 90)
	add(b2, 8, 70)
	add(b2, 9, 50)
	m := Merge(b1.Summary(), b2.Summary())
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	for _, h := range m.Heavy {
		if h.Count < truth[h.Value] {
			t.Errorf("merged value %d: count %d below truth %d", h.Value, h.Count, truth[h.Value])
		}
	}
	// Floor bounds every untracked value's true count.
	tracked := map[int64]bool{}
	for _, h := range m.Heavy {
		tracked[h.Value] = true
	}
	for v, tc := range truth {
		if !tracked[v] && tc > m.HeavyFloor {
			t.Errorf("untracked value %d has true count %d > floor %d", v, tc, m.HeavyFloor)
		}
	}
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]int64, 2000)
	b := make([]int64, 3000)
	for i := range a {
		a[i] = rng.Int63n(5000)
	}
	for i := range b {
		b[i] = rng.Int63n(5000)
	}
	sa, sb := buildFrom(a), buildFrom(b)
	ab, ba := Merge(sa, sb), Merge(sb, sa)
	ja, _ := json.Marshal(ab)
	jb, _ := json.Marshal(ba)
	if string(ja) != string(jb) {
		t.Fatalf("merge not commutative:\n%s\n%s", ja, jb)
	}
}

func TestMergeAll(t *testing.T) {
	if MergeAll(nil, nil) != nil {
		t.Fatal("MergeAll of nils should be nil")
	}
	s := buildFrom([]int64{1, 2})
	m := MergeAll(nil, s, nil)
	if m.Count != 2 {
		t.Fatalf("MergeAll skipped wrong entries: %+v", m)
	}
	// MergeAll must not alias its inputs.
	m.Min = -99
	if s.Min == -99 {
		t.Fatal("MergeAll aliased input summary")
	}
}

func TestFromSample(t *testing.T) {
	h := histogram.New[int64](histogram.SizeModel{ValueBytes: 8, CountBytes: 8})
	h.Insert(10, 3)
	h.Insert(20, 1)
	s := &core.Sample[int64]{Kind: core.ReservoirKind, Hist: h, ParentSize: 40, Q: 1}
	sum := FromSample(s)
	if sum.Source != SourceSample {
		t.Fatalf("source=%q", sum.Source)
	}
	if sum.Count != 40 || sum.Observed != 4 {
		t.Fatalf("count=%d observed=%d, want 40,4", sum.Count, sum.Observed)
	}
	if sum.Min != 10 || sum.Max != 20 {
		t.Fatalf("min=%d max=%d", sum.Min, sum.Max)
	}
	if sum.Exhaustive {
		t.Fatal("reservoir sample marked exhaustive")
	}
	// Heavy counts scale to population: 3 copies at n=4, N=40 → 30.
	if sum.Heavy[0].Value != 10 || sum.Heavy[0].Count != 30 {
		t.Fatalf("scaled heavy: %+v", sum.Heavy)
	}
	if err := sum.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// Exhaustive sample stamps the flag.
	he := histogram.New[int64](histogram.SizeModel{ValueBytes: 8, CountBytes: 8})
	he.Insert(1, 2)
	se := &core.Sample[int64]{Kind: core.Exhaustive, Hist: he, ParentSize: 2, Q: 1}
	if !FromSample(se).Exhaustive {
		t.Fatal("exhaustive sample not marked")
	}

	// Empty sample → empty summary that never prunes.
	hz := histogram.New[int64](histogram.SizeModel{ValueBytes: 8, CountBytes: 8})
	sz := &core.Sample[int64]{Kind: core.ReservoirKind, Hist: hz, ParentSize: 10, Q: 1}
	sumz := FromSample(sz)
	if sumz.Observed != 0 || sumz.ProvablyOutside(0, 0) {
		t.Fatalf("empty-sample summary prunes: %+v", sumz)
	}
	if err := sumz.Validate(); err != nil {
		t.Fatalf("empty-sample summary invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := buildFrom([]int64{5, -3, 100, 5, 7})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped summary invalid: %v", err)
	}
	data2, _ := json.Marshal(&back)
	if string(data) != string(data2) {
		t.Fatalf("round trip not stable:\n%s\n%s", data, data2)
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	good := buildFrom([]int64{1, 2, 3})
	cases := map[string]func(*Summary){
		"version":     func(s *Summary) { s.Version = 99 },
		"source":      func(s *Summary) { s.Source = "mystery" },
		"minmax":      func(s *Summary) { s.Min, s.Max = 5, 1 },
		"kmv-order":   func(s *Summary) { s.KMV[0], s.KMV[1] = s.KMV[1], s.KMV[0] },
		"kmv-over":    func(s *Summary) { s.KMVK = 1 },
		"negative":    func(s *Summary) { s.Count = -1 },
		"observed":    func(s *Summary) { s.Observed = s.Count + 1 },
		"heavy-count": func(s *Summary) { s.Heavy[0].Count = 0 },
		"nan":         func(s *Summary) { s.Sum = math.NaN() },
	}
	for name, corrupt := range cases {
		s := good.Clone()
		corrupt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corrupt summary validated", name)
		}
	}
	var nilSum *Summary
	if err := nilSum.Validate(); err == nil {
		t.Error("nil summary validated")
	}
}

func TestUnionKMVTruncates(t *testing.T) {
	// Union with mismatched capacities keeps min(K) smallest.
	ba := NewBuilderSized(4, 4)
	bb := NewBuilderSized(8, 4)
	for v := int64(0); v < 100; v++ {
		ba.Add(v)
		bb.Add(v + 50)
	}
	m := Merge(ba.Summary(), bb.Summary())
	if m.KMVK != 4 || len(m.KMV) != 4 {
		t.Fatalf("k=%d len=%d, want 4,4", m.KMVK, len(m.KMV))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
