// Package sketch implements compact, mergeable per-partition summary
// sidecars for the sample warehouse: row count, min/max, first two moments,
// a KMV (k-minimum-values) distinct sketch, and a space-saving heavy-hitters
// list. A Summary is a few KB regardless of partition size, merges under the
// same closure law as the paper's samples (any subset of partition summaries
// combines into a valid summary of the union), and lets the read path prove
// facts about a partition — "no value in [lo,hi] exists here", "at least D
// distinct values", "value v appears between c-e and c times" — without
// loading the partition's sample.
//
// Two provenances exist. A stream-built Summary (Source "stream") saw every
// ingested value and its facts are exact over the full partition. A
// sample-built Summary (Source "sample", produced by FromSample or fsck
// -fix backfill) only proves facts about the stored sample — but since the
// stored sample is all a query can ever observe for that partition, pruning
// on a sample-built sketch is still answer-preserving.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// Version is the current sidecar format version. Loaders must reject (and
// backfill) summaries with a different version.
const Version = 1

const (
	// DefaultKMVK is the default number of minimum hash values kept by the
	// distinct sketch: relative standard error ≈ 1/sqrt(K-2) ≈ 6.3%.
	DefaultKMVK = 256
	// DefaultHeavyK is the default number of space-saving counters.
	DefaultHeavyK = 16
)

// Source labels how a Summary was built.
const (
	// SourceStream means every ingested value passed through the builder;
	// facts are exact over the full partition.
	SourceStream = "stream"
	// SourceSample means the summary was derived from the stored sample;
	// facts are exact over the sample (moments scaled to population).
	SourceSample = "sample"
)

// HeavyHit is one space-saving counter: Value occurred at least Count-Err
// and at most Count times in the summarized stream.
type HeavyHit struct {
	Value int64 `json:"value"`
	Count int64 `json:"count"`
	Err   int64 `json:"err,omitempty"`
}

// Summary is the mergeable per-partition sidecar.
type Summary struct {
	// Version is the format version (see Version).
	Version int `json:"version"`
	// Source is SourceStream or SourceSample.
	Source string `json:"source"`
	// Exhaustive mirrors the companion sample's kind: true when the stored
	// sample is the complete frequency histogram of the partition. Pruned
	// partitions contribute this flag to the estimator's exactness.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Count is the summarized population size (rows in the partition).
	Count int64 `json:"count"`
	// Observed is the number of values actually hashed into the sketch
	// (= Count for stream summaries, sample size for sample summaries).
	// A summary with Observed == 0 proves nothing and must not prune.
	Observed int64 `json:"observed"`
	// Min and Max bound every observed value. Empty summaries hold
	// Min = MaxInt64, Max = MinInt64 so that any merge is an identity.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Sum and Sum2 are the first two moments at population scale (sample
	// summaries scale by ParentSize/SampleSize).
	Sum  float64 `json:"sum"`
	Sum2 float64 `json:"sum2"`
	// KMVK is the sketch capacity; KMV holds the up-to-KMVK smallest
	// 64-bit value hashes in ascending order.
	KMVK int      `json:"kmv_k"`
	KMV  []uint64 `json:"kmv,omitempty"`
	// HeavyK is the space-saving capacity; Heavy holds up to HeavyK
	// counters in descending Count order. HeavyFloor is an upper bound on
	// the count of any value absent from Heavy (0 until the counter table
	// first overflowed).
	HeavyK     int        `json:"heavy_k"`
	Heavy      []HeavyHit `json:"heavy,omitempty"`
	HeavyFloor int64      `json:"heavy_floor,omitempty"`
}

// splitmix64 is the value hash for the KMV sketch: a strong 64-bit mixer
// (Vigna) whose full avalanche makes the k smallest hash values behave as
// k uniform order statistics.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash returns the sketch hash of a value. Exposed so tests and tools can
// reproduce sketch contents.
func Hash(v int64) uint64 { return splitmix64(uint64(v)) }

// Builder accumulates a stream of values into a Summary. The zero Builder
// is not ready; use NewBuilder.
type Builder struct {
	sum        Summary
	kmv        *kmvHeap
	heavy      map[int64]*HeavyHit
	heavyK     int
	heavyFloor int64
}

// NewBuilder returns a Builder with the default sketch capacities.
func NewBuilder() *Builder { return NewBuilderSized(DefaultKMVK, DefaultHeavyK) }

// NewBuilderSized returns a Builder with explicit KMV and heavy-hitter
// capacities (minimum 1 each).
func NewBuilderSized(kmvK, heavyK int) *Builder {
	if kmvK < 1 {
		kmvK = 1
	}
	if heavyK < 1 {
		heavyK = 1
	}
	return &Builder{
		sum: Summary{
			Version: Version,
			Source:  SourceStream,
			Min:     math.MaxInt64,
			Max:     math.MinInt64,
			KMVK:    kmvK,
			HeavyK:  heavyK,
		},
		kmv:    newKMVHeap(kmvK),
		heavy:  make(map[int64]*HeavyHit, heavyK),
		heavyK: heavyK,
	}
}

// Add feeds one value into the builder.
func (b *Builder) Add(v int64) { b.AddN(v, 1) }

// AddN feeds a value with multiplicity n (a histogram entry). The KMV
// sketch is count-insensitive, so one hash insertion covers all n copies.
func (b *Builder) AddN(v int64, n int64) {
	if n <= 0 {
		return
	}
	b.sum.Count += n
	b.sum.Observed += n
	if v < b.sum.Min {
		b.sum.Min = v
	}
	if v > b.sum.Max {
		b.sum.Max = v
	}
	f := float64(v)
	b.sum.Sum += f * float64(n)
	b.sum.Sum2 += f * f * float64(n)
	b.kmv.insert(Hash(v))
	b.addHeavy(v, n)
}

// addHeavy is the space-saving update: tracked values increment; untracked
// values claim a free slot, or evict the minimum counter inheriting its
// count as error.
func (b *Builder) addHeavy(v int64, n int64) {
	if h, ok := b.heavy[v]; ok {
		h.Count += n
		return
	}
	if len(b.heavy) < b.heavyK {
		b.heavy[v] = &HeavyHit{Value: v, Count: n}
		return
	}
	// Evict the minimum-count entry (ties broken by value for determinism).
	var min *HeavyHit
	for _, h := range b.heavy {
		if min == nil || h.Count < min.Count || (h.Count == min.Count && h.Value < min.Value) {
			min = h
		}
	}
	delete(b.heavy, min.Value)
	b.heavy[v] = &HeavyHit{Value: v, Count: min.Count + n, Err: min.Count}
	if min.Count > b.heavyFloor {
		b.heavyFloor = min.Count
	}
}

// Summary finalizes and returns the built summary. The builder may keep
// accumulating afterwards; each call snapshots the current state.
func (b *Builder) Summary() *Summary {
	s := b.sum // copy
	s.KMV = b.kmv.sorted()
	s.Heavy = make([]HeavyHit, 0, len(b.heavy))
	for _, h := range b.heavy {
		s.Heavy = append(s.Heavy, *h)
	}
	sortHeavy(s.Heavy)
	s.HeavyFloor = b.heavyFloor
	return &s
}

// sortHeavy orders counters by descending count, ascending value on ties.
func sortHeavy(hits []HeavyHit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Count != hits[j].Count {
			return hits[i].Count > hits[j].Count
		}
		return hits[i].Value < hits[j].Value
	})
}

// kmvHeap keeps the k smallest distinct hashes seen. It is a max-heap over
// at most k entries so the current threshold (largest kept hash) is O(1).
type kmvHeap struct {
	k    int
	h    []uint64
	seen map[uint64]struct{}
}

func newKMVHeap(k int) *kmvHeap {
	return &kmvHeap{k: k, seen: make(map[uint64]struct{}, k)}
}

func (m *kmvHeap) insert(hash uint64) {
	if _, dup := m.seen[hash]; dup {
		return
	}
	if len(m.h) < m.k {
		m.seen[hash] = struct{}{}
		m.h = append(m.h, hash)
		m.up(len(m.h) - 1)
		return
	}
	if hash >= m.h[0] {
		return
	}
	delete(m.seen, m.h[0])
	m.seen[hash] = struct{}{}
	m.h[0] = hash
	m.down(0)
}

func (m *kmvHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if m.h[p] >= m.h[i] {
			break
		}
		m.h[p], m.h[i] = m.h[i], m.h[p]
		i = p
	}
}

func (m *kmvHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(m.h) && m.h[l] > m.h[big] {
			big = l
		}
		if r < len(m.h) && m.h[r] > m.h[big] {
			big = r
		}
		if big == i {
			return
		}
		m.h[i], m.h[big] = m.h[big], m.h[i]
		i = big
	}
}

func (m *kmvHeap) sorted() []uint64 {
	out := append([]uint64(nil), m.h...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctEstimate returns the KMV distinct-value estimate. An unsaturated
// sketch holds every distinct hash seen and the answer is exact; a
// saturated sketch uses the unbiased estimator (K-1)/U_(K) where U_(K) is
// the K-th smallest hash scaled to (0,1].
func (s *Summary) DistinctEstimate() float64 {
	n := len(s.KMV)
	if n == 0 {
		return 0
	}
	if n < s.KMVK {
		return float64(n) // unsaturated: exact
	}
	kth := s.KMV[n-1]
	u := (float64(kth) + 1) / math.Pow(2, 64)
	if u <= 0 {
		return float64(n)
	}
	return float64(n-1) / u
}

// Saturated reports whether the KMV sketch has reached capacity (estimates
// become approximate rather than exact).
func (s *Summary) Saturated() bool { return len(s.KMV) >= s.KMVK }

// ProvablyOutside reports whether the summary proves that no observed value
// lies inside [lo, hi]. An empty summary (Observed == 0) proves nothing —
// the companion sample may be unreadable, and pruning on it would change
// error behavior — so it never prunes.
func (s *Summary) ProvablyOutside(lo, hi int64) bool {
	return s.Observed > 0 && (s.Max < lo || s.Min > hi)
}

// RangeOverlap estimates the fraction of the partition's values that fall
// inside [lo, hi] by interval intersection under a uniform-spread
// assumption over [Min, Max]. It is a planning weight in [0, 1], not a
// proof: 0 only when ProvablyOutside holds.
func (s *Summary) RangeOverlap(lo, hi int64) float64 {
	if s.Observed == 0 || lo > hi {
		return 1 // unknown contributes full weight
	}
	if s.Max < lo || s.Min > hi {
		return 0
	}
	span := float64(s.Max) - float64(s.Min) + 1
	iLo, iHi := s.Min, s.Max
	if lo > iLo {
		iLo = lo
	}
	if hi < iHi {
		iHi = hi
	}
	frac := (float64(iHi) - float64(iLo) + 1) / span
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// TopK returns the up-to-k heaviest counters (descending count). Each entry
// bounds the value's true observed count within [Count-Err, Count].
func (s *Summary) TopK(k int) []HeavyHit {
	if k > len(s.Heavy) {
		k = len(s.Heavy)
	}
	out := append([]HeavyHit(nil), s.Heavy[:k]...)
	return out
}

// Merge combines two summaries into a summary of the union of their
// partitions. Inputs are not modified. Merging is commutative and, up to
// heavy-hitter truncation ties, associative:
//
//   - counts, moments, min/max add/extend exactly;
//   - KMV union keeps the k smallest of the combined hash sets with
//     k = min(a.KMVK, b.KMVK), exactly the sketch a single pass over the
//     union would have produced;
//   - space-saving counters sum over the entry union, charging each side's
//     Floor to values it did not track, with the output Floor the sum of
//     the input Floors (error bounds remain valid upper bounds).
//
// The result is SourceSample if either input is, and Exhaustive only if
// both are.
func Merge(a, b *Summary) *Summary {
	if a == nil {
		return b.clone()
	}
	if b == nil {
		return a.clone()
	}
	out := &Summary{
		Version:    Version,
		Source:     mergeSource(a.Source, b.Source),
		Exhaustive: a.Exhaustive && b.Exhaustive,
		Count:      a.Count + b.Count,
		Observed:   a.Observed + b.Observed,
		Min:        minI64(a.Min, b.Min),
		Max:        maxI64(a.Max, b.Max),
		Sum:        a.Sum + b.Sum,
		Sum2:       a.Sum2 + b.Sum2,
		KMVK:       minInt(a.KMVK, b.KMVK),
		HeavyK:     minInt(a.HeavyK, b.HeavyK),
	}
	out.KMV = unionKMV(a.KMV, b.KMV, out.KMVK)

	// Space-saving merge: union of entries; a value missing from one side
	// could have occurred up to that side's Floor times there.
	merged := make(map[int64]*HeavyHit, len(a.Heavy)+len(b.Heavy))
	for _, h := range a.Heavy {
		hh := h
		merged[h.Value] = &hh
	}
	for _, h := range b.Heavy {
		if m, ok := merged[h.Value]; ok {
			m.Count += h.Count
			m.Err += h.Err
		} else {
			hh := h
			hh.Count += a.HeavyFloor
			hh.Err += a.HeavyFloor
			merged[h.Value] = &hh
		}
	}
	for _, h := range a.Heavy {
		if _, inB := findHeavy(b.Heavy, h.Value); !inB {
			m := merged[h.Value]
			m.Count += b.HeavyFloor
			m.Err += b.HeavyFloor
		}
	}
	hits := make([]HeavyHit, 0, len(merged))
	for _, h := range merged {
		hits = append(hits, *h)
	}
	sortHeavy(hits)
	out.HeavyFloor = a.HeavyFloor + b.HeavyFloor
	if len(hits) > out.HeavyK {
		// Truncated counters raise the floor: a dropped value may have
		// occurred up to its merged Count times.
		for _, h := range hits[out.HeavyK:] {
			if h.Count > out.HeavyFloor {
				out.HeavyFloor = h.Count
			}
		}
		hits = hits[:out.HeavyK]
	}
	out.Heavy = hits
	return out
}

// MergeAll folds a slice of summaries; nil entries are skipped. Returns nil
// when every input is nil.
func MergeAll(sums ...*Summary) *Summary {
	var acc *Summary
	for _, s := range sums {
		if s == nil {
			continue
		}
		if acc == nil {
			acc = s.clone()
			continue
		}
		acc = Merge(acc, s)
	}
	return acc
}

func mergeSource(a, b string) string {
	if a == SourceSample || b == SourceSample {
		return SourceSample
	}
	return SourceStream
}

func findHeavy(hits []HeavyHit, v int64) (HeavyHit, bool) {
	for _, h := range hits {
		if h.Value == v {
			return h, true
		}
	}
	return HeavyHit{}, false
}

// unionKMV merges two ascending hash slices keeping the k smallest
// distinct hashes.
func unionKMV(a, b []uint64, k int) []uint64 {
	out := make([]uint64, 0, minInt(len(a)+len(b), k))
	i, j := 0, 0
	var last uint64
	for (i < len(a) || j < len(b)) && len(out) < k {
		var v uint64
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] <= b[j]:
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		if len(out) > 0 && v == last {
			continue
		}
		out = append(out, v)
		last = v
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (s *Summary) clone() *Summary {
	if s == nil {
		return nil
	}
	c := *s
	c.KMV = append([]uint64(nil), s.KMV...)
	c.Heavy = append([]HeavyHit(nil), s.Heavy...)
	return &c
}

// Clone returns a deep copy of the summary.
func (s *Summary) Clone() *Summary { return s.clone() }

// Validate checks internal consistency: version, capacities, ordering, and
// moment sanity. Corrupt sidecars must never prune, so loaders call this
// before trusting a summary.
func (s *Summary) Validate() error {
	if s == nil {
		return fmt.Errorf("sketch: nil summary")
	}
	if s.Version != Version {
		return fmt.Errorf("sketch: version %d, want %d", s.Version, Version)
	}
	if s.Source != SourceStream && s.Source != SourceSample {
		return fmt.Errorf("sketch: unknown source %q", s.Source)
	}
	if s.Count < 0 || s.Observed < 0 {
		return fmt.Errorf("sketch: negative count (count=%d observed=%d)", s.Count, s.Observed)
	}
	if s.Observed > s.Count {
		return fmt.Errorf("sketch: observed %d exceeds count %d", s.Observed, s.Count)
	}
	if s.KMVK < 1 || s.HeavyK < 1 {
		return fmt.Errorf("sketch: invalid capacities (kmv_k=%d heavy_k=%d)", s.KMVK, s.HeavyK)
	}
	if s.Observed == 0 {
		if len(s.KMV) != 0 || len(s.Heavy) != 0 {
			return fmt.Errorf("sketch: empty summary carries sketch content")
		}
		return nil
	}
	if s.Min > s.Max {
		return fmt.Errorf("sketch: min %d > max %d with observed %d", s.Min, s.Max, s.Observed)
	}
	if len(s.KMV) == 0 {
		return fmt.Errorf("sketch: non-empty summary with empty KMV")
	}
	if len(s.KMV) > s.KMVK {
		return fmt.Errorf("sketch: KMV holds %d hashes, capacity %d", len(s.KMV), s.KMVK)
	}
	for i := 1; i < len(s.KMV); i++ {
		if s.KMV[i] <= s.KMV[i-1] {
			return fmt.Errorf("sketch: KMV not strictly ascending at %d", i)
		}
	}
	if len(s.Heavy) > s.HeavyK {
		return fmt.Errorf("sketch: heavy list holds %d entries, capacity %d", len(s.Heavy), s.HeavyK)
	}
	for i, h := range s.Heavy {
		if h.Count <= 0 || h.Err < 0 || h.Err > h.Count {
			return fmt.Errorf("sketch: heavy entry %d has invalid counts (count=%d err=%d)", i, h.Count, h.Err)
		}
		if i > 0 && s.Heavy[i-1].Count < h.Count {
			return fmt.Errorf("sketch: heavy list not sorted by count at %d", i)
		}
	}
	if s.HeavyFloor < 0 {
		return fmt.Errorf("sketch: negative heavy floor %d", s.HeavyFloor)
	}
	if math.IsNaN(s.Sum) || math.IsNaN(s.Sum2) || math.IsInf(s.Sum, 0) || math.IsInf(s.Sum2, 0) {
		return fmt.Errorf("sketch: non-finite moments")
	}
	return nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
