package sketch

import (
	"math"

	"samplewh/internal/core"
)

// FromSample backfills a Summary from a stored sample. The sketch proves
// facts about the sample's value set (all a query can observe for the
// partition), with moments and heavy counts scaled to population size by
// ParentSize/SampleSize so merged summaries stay comparable with
// stream-built ones. Count is the parent population; Observed is the sample
// size. Returns an empty summary (which never prunes) for an empty sample.
func FromSample(s *core.Sample[int64]) *Summary {
	b := NewBuilder()
	b.sum.Source = SourceSample
	b.sum.Exhaustive = s.Kind == core.Exhaustive
	n := s.Size()
	if n == 0 {
		sum := b.Summary()
		sum.Count = s.ParentSize
		return sum
	}
	scale := float64(s.ParentSize) / float64(n)
	s.Hist.Each(func(v int64, count int64) {
		// Scale each entry's count to population size, keeping at least 1
		// so observed values never vanish from the heavy-hitter table.
		sc := int64(math.Round(float64(count) * scale))
		if sc < 1 {
			sc = 1
		}
		b.AddN(v, sc)
	})
	sum := b.Summary()
	// The builder accumulated scaled counts; pin the exact identities.
	sum.Count = s.ParentSize
	sum.Observed = n
	return sum
}
