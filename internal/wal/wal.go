// Package wal is the segmented write-ahead ingest journal of the sample
// warehouse's serving layer. Every ingest batch the server acknowledges is
// first appended here as CRC32C-framed records and fsynced per a configurable
// policy, so a kill -9 between the acknowledgment and the durable roll-in of
// the finished sample loses nothing: on restart the journal's sealed but
// uncommitted entries are replayed through the data set's sampler family
// (Warehouse.ReplayJournal) and the partitions the clients were told exist
// are rebuilt exactly once.
//
// Entry lifecycle, as driven by the ingest handler:
//
//	e, _ := log.Begin(ds, part, idemKey, expected)   // frame: begin
//	e.Append(values)                                 // frame: values (chunked)
//	e.Seal(total)                                    // frame: seal + fsync — the ack barrier
//	... roll the finalized sample into the warehouse ...
//	e.Commit()                                       // frame: commit — entry GC-able
//
// Seal is the durability point: once it returns under SyncAlways, the batch
// survives a crash and the HTTP response may promise so. Commit records that
// the sample itself was durably rolled in; committed entries are never
// replayed, and a segment whose entries are all committed (or dead) is
// deleted. Recovery truncates torn tails (a crash mid-append) back to the
// last valid frame, discards unsealed entries (the client never got an ack;
// it will retry), and returns sealed-uncommitted entries for replay.
//
// Fault injection: an optional faults.Schedule is consulted on every append
// (faults.OpWalAppend — an injected error writes a deterministic torn prefix
// of the frame, modeling a short write) and every fsync (faults.OpWalSync —
// the sync fails without syncing), so tests exercise the exact crash shapes
// recovery must survive.
package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samplewh/internal/faults"
	"samplewh/internal/obs"
	"samplewh/internal/storage"
)

// Policy selects when appended frames are fsynced.
type Policy uint8

const (
	// SyncAlways fsyncs on every Seal, before the ack leaves the server:
	// an acknowledged batch survives power loss. The default.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background interval: acknowledgments can
	// outrun durability by up to the interval — bounded loss, higher
	// throughput.
	SyncInterval
	// SyncOff never fsyncs; the OS flushes when it pleases. Only the
	// process-crash (not machine-crash) guarantee remains.
	SyncOff
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy inverts Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Options tunes a journal. The zero value selects SyncAlways, a 100ms
// interval (unused unless SyncInterval), and 64 MiB segments.
type Options struct {
	// Policy selects the fsync policy.
	Policy Policy
	// Interval is the background fsync period under SyncInterval.
	Interval time.Duration
	// SegmentBytes is the soft segment-roll threshold. One entry's frames
	// never span segments, so a single huge batch may overshoot it.
	SegmentBytes int64
	// Schedule, when non-nil, injects deterministic faults into appends and
	// fsyncs (see the package comment).
	Schedule faults.Schedule
	// Registry routes wal.* metrics and replay/truncate events; nil leaves
	// the journal uninstrumented.
	Registry *obs.Registry
}

func (o Options) normalized() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Segment file format constants.
const (
	segMagic   = 0x5357414c // "SWAL"
	segVersion = 1
	headerSize = 5 // u32 magic + u8 version

	frameBegin  = 1
	frameValues = 2
	frameSeal   = 3
	frameCommit = 4

	// frameOverhead is u32 payload length + u8 type + u32 crc32c.
	frameOverhead = 9

	segExt = ".wal"
)

// crcTable is the Castagnoli polynomial — the same taxonomy as the storage
// codec's sample checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walObs caches the journal's metric handles (see README.md §Metrics
// catalog):
//
//	wal.appends      frames appended (counter)
//	wal.bytes        bytes appended (counter)
//	wal.fsyncs       segment fsyncs (counter)
//	wal.seals        entries sealed — the ack barrier (counter)
//	wal.commits      entries committed after durable roll-in (counter)
//	wal.replays      sealed-uncommitted entries recovered for replay (counter)
//	wal.truncations  torn tails truncated during recovery (counter)
//	wal.torn_frames  frames lost to torn tails (counter)
//	wal.gc_segments  fully committed segments deleted (counter)
//	wal.segments     live segment files (gauge)
type walObs struct {
	reg         *obs.Registry
	appends     *obs.Counter
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	seals       *obs.Counter
	commits     *obs.Counter
	replays     *obs.Counter
	truncations *obs.Counter
	tornFrames  *obs.Counter
	gcSegments  *obs.Counter
	segments    *obs.Gauge
}

func newWALObs(reg *obs.Registry) walObs {
	return walObs{
		reg:         reg,
		appends:     reg.Counter("wal.appends"),
		bytes:       reg.Counter("wal.bytes"),
		fsyncs:      reg.Counter("wal.fsyncs"),
		seals:       reg.Counter("wal.seals"),
		commits:     reg.Counter("wal.commits"),
		replays:     reg.Counter("wal.replays"),
		truncations: reg.Counter("wal.truncations"),
		tornFrames:  reg.Counter("wal.torn_frames"),
		gcSegments:  reg.Counter("wal.gc_segments"),
		segments:    reg.Gauge("wal.segments"),
	}
}

// segment is one journal file and its liveness bookkeeping.
type segment struct {
	seq  uint64
	path string
	// live counts sealed-or-inflight entries begun in this segment that are
	// not yet committed (or aborted). A non-active segment with live == 0
	// holds nothing recovery would need and is deleted.
	live int
}

// entryState is the in-memory lifecycle of one journaled entry.
type entryState struct {
	seg    *segment
	sealed bool
	done   bool // committed or aborted
}

// Log is a segmented write-ahead journal for values of type V. It is safe
// for concurrent use; appends from concurrent entries interleave in the
// active segment and are disambiguated by entry ID on recovery.
type Log[V comparable] struct {
	dir   string
	codec storage.ValueCodec[V]
	opts  Options

	mu        sync.Mutex
	f         *os.File // active segment; nil until first append
	broken    bool     // active segment had a failed/torn append; roll before reuse
	segs      []*segment
	entries   map[uint64]*entryState
	nextEntry uint64
	nextSeq   uint64
	activeSeq uint64
	written   int64 // bytes written to the active segment
	closed    bool

	// syncMu serializes fsyncs; concurrent Seals coalesce: whoever enters
	// first syncs for everyone whose frames were already appended.
	syncMu    sync.Mutex
	syncedSeq uint64
	syncedOff int64

	appendSeq atomic.Int64 // fault-injection sequence numbers
	syncSeq   atomic.Int64

	stop chan struct{} // interval-sync ticker shutdown
	wg   sync.WaitGroup

	o walObs
}

// RecoveredEntry is one sealed-but-uncommitted batch found at Open time: the
// server acknowledged it (or was about to) but its sample never durably
// rolled in. The caller replays it through the data set's sampler and then
// commits it.
type RecoveredEntry[V comparable] struct {
	ID        uint64
	Dataset   string
	Partition string
	// Key is the client's Idempotency-Key, empty if none was supplied.
	Key      string
	Expected int64
	Values   []V
}

// Open opens (creating if needed) the journal rooted at dir and recovers its
// state: torn tails are truncated back to the last valid frame, fully
// committed segments are deleted, and every sealed-uncommitted entry is
// returned for replay. The caller must replay and Commit (or explicitly
// abandon) the returned entries before new load arrives, or they will be
// replayed again after the next crash.
func Open[V comparable](dir string, codec storage.ValueCodec[V], opts Options) (*Log[V], []RecoveredEntry[V], error) {
	opts = opts.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log[V]{
		dir:       dir,
		codec:     codec,
		opts:      opts,
		entries:   make(map[uint64]*entryState),
		nextEntry: 1,
		nextSeq:   1,
		o:         newWALObs(opts.Registry),
	}
	recovered, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, recovered, nil
}

// Dir returns the journal's root directory.
func (l *Log[V]) Dir() string { return l.dir }

// syncLoop is the SyncInterval background flusher.
func (l *Log[V]) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.Sync() // an interval-sync failure surfaces on the next Seal or Close
		}
	}
}

// Entry is one in-flight journaled ingest batch.
type Entry[V comparable] struct {
	l  *Log[V]
	id uint64
	// key routes fault-schedule decisions ("dataset/partition").
	key    string
	sealed bool
}

// ID returns the journal-wide entry ID.
func (e *Entry[V]) ID() uint64 { return e.id }

// Begin opens a new journal entry for one ingest batch into ds/part. key is
// the client's idempotency key (may be empty); expected is the expected
// partition size recorded for HB replay.
func (l *Log[V]) Begin(ds, part, key string, expected int64) (*Entry[V], error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("wal: begin on closed journal")
	}
	id := l.nextEntry
	l.nextEntry++
	payload := binary.AppendUvarint(nil, id)
	payload = appendString(payload, ds)
	payload = appendString(payload, part)
	payload = appendString(payload, key)
	payload = binary.AppendVarint(payload, expected)
	fkey := ds + "/" + part
	if err := l.appendLocked(frameBegin, payload, fkey, true); err != nil {
		return nil, err
	}
	seg := l.segs[len(l.segs)-1]
	seg.live++
	l.entries[id] = &entryState{seg: seg}
	return &Entry[V]{l: l, id: id, key: fkey}, nil
}

// Append journals one chunk of the batch's values.
func (e *Entry[V]) Append(values []V) error {
	if len(values) == 0 {
		return nil
	}
	if e.sealed {
		return fmt.Errorf("wal: append to sealed entry %d", e.id)
	}
	payload := binary.AppendUvarint(nil, e.id)
	payload = binary.AppendUvarint(payload, uint64(len(values)))
	for _, v := range values {
		payload = e.l.codec.Append(payload, v)
	}
	e.l.mu.Lock()
	defer e.l.mu.Unlock()
	if e.l.closed {
		return fmt.Errorf("wal: append on closed journal")
	}
	return e.l.appendLocked(frameValues, payload, e.key, false)
}

// Seal marks the batch complete with its total value count and makes it
// durable per the sync policy. Under SyncAlways, when Seal returns nil the
// batch will survive a crash — this is the barrier the ingest handler waits
// on before acknowledging the client.
func (e *Entry[V]) Seal(total int64) error {
	return e.SealContext(context.Background(), total)
}

// SealContext is Seal recording the durability barrier in the request trace
// when ctx carries an obs span: the fsync that gates the ingest ack appears
// as a wal_fsync child span, separating queue/encode time from disk time in
// explain output. ctx carries only the span — sealing is never canceled
// part-way.
func (e *Entry[V]) SealContext(ctx context.Context, total int64) error {
	if e.sealed {
		return fmt.Errorf("wal: double seal of entry %d", e.id)
	}
	payload := binary.AppendUvarint(nil, e.id)
	payload = binary.AppendVarint(payload, total)
	e.l.mu.Lock()
	if e.l.closed {
		e.l.mu.Unlock()
		return fmt.Errorf("wal: seal on closed journal")
	}
	if err := e.l.appendLocked(frameSeal, payload, e.key, false); err != nil {
		e.l.mu.Unlock()
		return err
	}
	if st := e.l.entries[e.id]; st != nil {
		st.sealed = true
	}
	seq, off := e.l.activeSeq, e.l.written
	e.l.mu.Unlock()
	e.sealed = true
	if e.l.opts.Policy == SyncAlways {
		sp := obs.SpanFromContext(ctx).Start("wal_fsync")
		err := e.l.syncTo(seq, off)
		sp.SetError(err)
		sp.End()
		if err != nil {
			return err
		}
	}
	e.l.o.seals.Inc()
	return nil
}

// Commit records that the entry's sample was durably rolled in; the entry
// will never be replayed and its segment becomes GC-able. Commit frames are
// not fsynced — losing one only costs an idempotent replay.
func (e *Entry[V]) Commit() error {
	payload := binary.AppendUvarint(nil, e.id)
	l := e.l
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.entries[e.id]
	if st == nil || st.done {
		return nil
	}
	if l.closed {
		return fmt.Errorf("wal: commit on closed journal")
	}
	if err := l.appendLocked(frameCommit, payload, e.key, false); err != nil {
		return err
	}
	l.finishLocked(e.id)
	l.o.commits.Inc()
	return nil
}

// Abort abandons an entry that will not be committed (the ingest failed
// before the ack). Its frames stay on disk until segment GC; if unsealed
// they are discarded by recovery anyway. Abort after Commit is a no-op, so
// handlers can `defer e.Abort()`.
func (e *Entry[V]) Abort() {
	l := e.l
	l.mu.Lock()
	defer l.mu.Unlock()
	l.finishLocked(e.id)
}

// finishLocked retires an entry's in-memory state and sweeps GC-able
// segments. Callers hold l.mu.
func (l *Log[V]) finishLocked(id uint64) {
	st := l.entries[id]
	if st == nil || st.done {
		return
	}
	st.done = true
	st.seg.live--
	delete(l.entries, id)
	l.gcLocked()
}

// CommitRecovered commits a replayed entry by ID (recovered entries have no
// live *Entry handle).
func (l *Log[V]) CommitRecovered(id uint64) error {
	payload := binary.AppendUvarint(nil, id)
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.entries[id]
	if st == nil || st.done {
		return nil
	}
	if l.closed {
		return fmt.Errorf("wal: commit on closed journal")
	}
	if err := l.appendLocked(frameCommit, payload, "", false); err != nil {
		return err
	}
	l.finishLocked(id)
	l.o.commits.Inc()
	return nil
}

// gcLocked deletes leading segments that hold nothing recovery would need.
// Callers hold l.mu.
func (l *Log[V]) gcLocked() {
	for len(l.segs) > 0 {
		s := l.segs[0]
		if s.live > 0 || s.seq == l.activeSeq {
			break
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			break // disk trouble; retry on the next commit
		}
		l.segs = l.segs[1:]
		l.o.gcSegments.Inc()
	}
	l.o.segments.Set(int64(len(l.segs)))
}

// appendLocked frames and writes one record to the active segment, rolling
// segments as needed. mayRoll is set only for begin frames so one entry's
// frames never span segments. Callers hold l.mu.
func (l *Log[V]) appendLocked(typ byte, payload []byte, fkey string, mayRoll bool) error {
	if l.f == nil || l.broken || (mayRoll && l.written >= l.opts.SegmentBytes) {
		if err := l.rollLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, 0, frameOverhead+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, typ)
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(frame, crcTable))

	if l.opts.Schedule != nil {
		f := l.opts.Schedule.Decide(faults.OpWalAppend, l.appendSeq.Add(1), fkey)
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Err != nil {
			// Deterministic short write: half the frame lands, the tail is
			// torn — exactly what a crash mid-append leaves behind. The
			// segment is poisoned; the next append rolls to a fresh one.
			n, _ := l.f.Write(frame[:len(frame)/2])
			l.written += int64(n)
			l.broken = true
			return fmt.Errorf("wal: append: %w", f.Err)
		}
	}
	n, err := l.f.Write(frame)
	l.written += int64(n)
	if err != nil {
		l.broken = true
		return fmt.Errorf("wal: append: %w", err)
	}
	l.o.appends.Inc()
	l.o.bytes.Add(int64(len(frame)))
	return nil
}

// rollLocked syncs and closes the active segment (if any) and opens the
// next. Callers hold l.mu.
func (l *Log[V]) rollLocked() error {
	if l.f != nil {
		if l.opts.Policy != SyncOff && !l.broken {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: roll: sync: %w", err)
			}
			l.o.fsyncs.Inc()
		}
		_ = l.f.Close()
		l.f = nil
	}
	seq := l.nextSeq
	l.nextSeq++
	path := filepath.Join(l.dir, fmt.Sprintf("%016x%s", seq, segExt))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], segMagic)
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if l.opts.Policy != SyncOff {
		// The new segment's directory entry must survive a crash or the
		// frames inside it are unreachable.
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.f = f
	l.broken = false
	l.activeSeq = seq
	l.written = headerSize
	l.segs = append(l.segs, &segment{seq: seq, path: path})
	l.o.segments.Set(int64(len(l.segs)))
	return nil
}

// syncTo fsyncs the active segment if frames up to (seq, off) are not yet
// known durable. Concurrent callers coalesce onto one fsync.
func (l *Log[V]) syncTo(seq uint64, off int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq > seq || (l.syncedSeq == seq && l.syncedOff >= off) {
		return nil
	}
	l.mu.Lock()
	f, cseq, w := l.f, l.activeSeq, l.written
	l.mu.Unlock()
	if cseq > seq {
		// The target segment was rolled away; the roll already synced it.
		l.syncedSeq, l.syncedOff = cseq, 0
		return nil
	}
	if f == nil {
		return nil
	}
	if l.opts.Schedule != nil {
		fa := l.opts.Schedule.Decide(faults.OpWalSync, l.syncSeq.Add(1), "")
		if fa.Delay > 0 {
			time.Sleep(fa.Delay)
		}
		if fa.Err != nil {
			return fmt.Errorf("wal: sync: %w", fa.Err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.o.fsyncs.Inc()
	l.syncedSeq, l.syncedOff = cseq, w
	return nil
}

// Sync flushes everything appended so far, regardless of policy.
func (l *Log[V]) Sync() error {
	l.mu.Lock()
	seq, off := l.activeSeq, l.written
	l.mu.Unlock()
	return l.syncTo(seq, off)
}

// Close stops the background flusher, syncs (unless SyncOff) and closes the
// active segment. The journal is unusable afterwards.
func (l *Log[V]) Close() error {
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
		l.stop = nil
	}
	var err error
	if l.opts.Policy != SyncOff {
		err = l.Sync()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.closed = true
	return err
}

// appendString encodes a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString decodes a uvarint-length-prefixed string from buf, returning
// the string and bytes consumed.
func readString(buf []byte) (string, int, error) {
	n, c := binary.Uvarint(buf)
	if c <= 0 {
		return "", 0, fmt.Errorf("wal: malformed string length")
	}
	if uint64(len(buf)-c) < n {
		return "", 0, fmt.Errorf("wal: truncated string")
	}
	return string(buf[c : c+int(n)]), c + int(n), nil
}

// syncDir fsyncs a directory so freshly created or removed segment files
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	return nil
}
