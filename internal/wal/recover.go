package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"samplewh/internal/obs"
)

// scanFrames walks the frames of one segment's bytes (header excluded) and
// calls fn for each frame whose CRC verifies. It returns the number of bytes
// covered by valid frames and whether a torn tail (truncated or corrupt
// trailing bytes) follows them. A frame-payload decode error from fn aborts
// the scan.
func scanFrames(data []byte, fn func(typ byte, payload []byte) error) (valid int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return int64(off), true, nil
		}
		plen := int(binary.BigEndian.Uint32(rest[:4]))
		if len(rest) < frameOverhead+plen {
			return int64(off), true, nil
		}
		body := rest[:5+plen]
		want := binary.BigEndian.Uint32(rest[5+plen : frameOverhead+plen])
		if crc32.Checksum(body, crcTable) != want {
			return int64(off), true, nil
		}
		if fn != nil {
			if err := fn(body[4], body[5:]); err != nil {
				return int64(off), false, err
			}
		}
		off += frameOverhead + plen
	}
	return int64(off), false, nil
}

// recEntry accumulates one entry's frames during recovery.
type recEntry[V comparable] struct {
	meta   RecoveredEntry[V]
	seg    *segment
	sealed bool
	total  int64
}

// recover scans the journal directory, truncates torn tails, deletes fully
// committed segments and primes the log's in-memory state. It returns the
// sealed-uncommitted entries in begin order. Called from Open before any
// concurrent use, so no locking.
func (l *Log[V]) recover() ([]RecoveredEntry[V], error) {
	names, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	begun := make(map[uint64]*recEntry[V])
	committed := make(map[uint64]bool)
	var order []uint64
	var maxID uint64
	for _, name := range names {
		path := filepath.Join(l.dir, name)
		seq, ok := parseSegName(name)
		if !ok {
			continue
		}
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		seg := &segment{seq: seq, path: path}
		headerOK := len(data) >= headerSize &&
			binary.BigEndian.Uint32(data[:4]) == segMagic && data[4] == segVersion
		var valid int64
		var tornAt int64
		torn := true // an unreadable header makes the whole file a torn tail
		if headerOK {
			var ferr error
			valid, torn, ferr = scanFrames(data[headerSize:], func(typ byte, payload []byte) error {
				return l.replayFrame(seg, typ, payload, begun, committed, &order)
			})
			if ferr != nil {
				return nil, fmt.Errorf("wal: segment %s: %w", name, ferr)
			}
			tornAt = headerSize + valid
		}
		if torn {
			lost := int64(len(data)) - tornAt
			if err := os.Truncate(path, tornAt); err != nil {
				return nil, fmt.Errorf("wal: truncate torn segment %s: %w", name, err)
			}
			l.o.truncations.Inc()
			l.o.tornFrames.Inc()
			if l.o.reg.Tracing() {
				l.o.reg.Emit(obs.Event{
					Type:      obs.EvWALTruncate,
					Component: "wal",
					Labels:    map[string]string{"segment": name},
					Values:    map[string]int64{"offset": tornAt, "lost_bytes": lost},
				})
			}
		}
		l.segs = append(l.segs, seg)
	}

	// Sealed-uncommitted entries are the survivors clients were promised;
	// everything else begun is dead (unsealed means no ack ever left, the
	// client will retry). Liveness per segment counts only the survivors.
	var out []RecoveredEntry[V]
	for _, id := range order {
		re := begun[id]
		if id > maxID {
			maxID = id
		}
		if committed[id] || !re.sealed {
			continue
		}
		if re.total != int64(len(re.meta.Values)) {
			// A sealed entry whose journaled values disagree with its sealed
			// total should be impossible (frames are sequential and CRC'd);
			// treat it as damage and drop rather than replay a wrong batch.
			l.o.tornFrames.Inc()
			continue
		}
		re.seg.live++
		l.entries[id] = &entryState{seg: re.seg, sealed: true}
		out = append(out, re.meta)
		l.o.replays.Inc()
		if l.o.reg.Tracing() {
			l.o.reg.Emit(obs.Event{
				Type:      obs.EvWALReplay,
				Component: "wal",
				Dataset:   re.meta.Dataset,
				Partition: re.meta.Partition,
				Labels:    map[string]string{"key": re.meta.Key},
				Values:    map[string]int64{"values": int64(len(re.meta.Values))},
			})
		}
	}
	// Commit frames can outlive their begin frames (the begin's segment was
	// GC'd); count them toward the ID watermark too, or a reissued ID could
	// collide with a stale commit frame and mask a future entry as committed.
	for id := range committed {
		if id > maxID {
			maxID = id
		}
	}
	if maxID >= l.nextEntry {
		l.nextEntry = maxID + 1
	}

	// Drop segments that hold nothing replayable. There is no active segment
	// yet (the first Begin opens a fresh one), so any live == 0 segment goes.
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s.live > 0 {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: gc segment: %w", err)
		}
		l.o.gcSegments.Inc()
	}
	l.segs = kept
	l.o.segments.Set(int64(len(l.segs)))
	return out, nil
}

// replayFrame folds one valid frame into the recovery state.
func (l *Log[V]) replayFrame(seg *segment, typ byte, payload []byte, begun map[uint64]*recEntry[V], committed map[uint64]bool, order *[]uint64) error {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("malformed entry id in frame type %d", typ)
	}
	rest := payload[n:]
	switch typ {
	case frameBegin:
		re := &recEntry[V]{seg: seg}
		re.meta.ID = id
		var err error
		var c int
		if re.meta.Dataset, c, err = readString(rest); err != nil {
			return err
		}
		rest = rest[c:]
		if re.meta.Partition, c, err = readString(rest); err != nil {
			return err
		}
		rest = rest[c:]
		if re.meta.Key, c, err = readString(rest); err != nil {
			return err
		}
		rest = rest[c:]
		exp, c := binary.Varint(rest)
		if c <= 0 {
			return fmt.Errorf("malformed expected count in begin frame")
		}
		re.meta.Expected = exp
		begun[id] = re
		*order = append(*order, id)
	case frameValues:
		re := begun[id]
		count, c := binary.Uvarint(rest)
		if c <= 0 {
			return fmt.Errorf("malformed value count in values frame")
		}
		rest = rest[c:]
		if re == nil || re.sealed {
			// A values frame for an unknown (GC'd begin) or sealed entry:
			// nothing to rebuild, skip it.
			return nil
		}
		for i := uint64(0); i < count; i++ {
			v, c, err := l.codec.Read(rest)
			if err != nil {
				return fmt.Errorf("decode journaled value: %w", err)
			}
			rest = rest[c:]
			re.meta.Values = append(re.meta.Values, v)
		}
	case frameSeal:
		total, c := binary.Varint(rest)
		if c <= 0 {
			return fmt.Errorf("malformed total in seal frame")
		}
		if re := begun[id]; re != nil {
			re.sealed = true
			re.total = total
		}
	case frameCommit:
		committed[id] = true
	default:
		return fmt.Errorf("unknown frame type %d", typ)
	}
	return nil
}

// listSegments returns the segment file names under dir, in sequence order.
// A missing directory lists as empty.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segExt) {
			continue
		}
		if _, ok := parseSegName(e.Name()); !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names) // fixed-width hex, so lexical order == sequence order
	return names, nil
}

// parseSegName extracts a segment's sequence number from its file name.
func parseSegName(name string) (uint64, bool) {
	base := strings.TrimSuffix(name, segExt)
	if len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// EntryInfo is one journaled entry's aggregated state as seen by Inspect.
type EntryInfo struct {
	ID        uint64
	Dataset   string
	Partition string
	Key       string
	Values    int64 // journaled value count
	Sealed    bool
	Committed bool
}

// SegmentInfo is one segment file's state as seen by Inspect.
type SegmentInfo struct {
	Name string
	Path string
	Seq  uint64
	// Size is the file size; ValidBytes is the prefix covered by the header
	// plus valid frames. Torn reports trailing bytes past the last valid
	// frame (Size > ValidBytes) — the crash shape -fix truncates away.
	Size       int64
	ValidBytes int64
	Frames     int
	Torn       bool
	// Begun lists the entry IDs whose begin frame lives in this segment.
	Begun []uint64
}

// DirReport is Inspect's read-only view of a journal directory, consumed by
// `swcli fsck`.
type DirReport struct {
	Segments []SegmentInfo
	// Entries aggregates entry state across all segments (commit frames may
	// live in a later segment than their begin frame).
	Entries map[uint64]*EntryInfo
}

// Orphaned reports whether the segment holds no entry that recovery would
// replay: every entry begun in it is committed (or was never sealed, so it
// is dead). Such segments are deleted by the next swd start; fsck -fix may
// remove them early.
func (r *DirReport) Orphaned(s SegmentInfo) bool {
	if s.Torn {
		return false
	}
	for _, id := range s.Begun {
		e := r.Entries[id]
		if e != nil && e.Sealed && !e.Committed {
			return false
		}
	}
	return true
}

// Pending returns the sealed-uncommitted entries — the batches a restart
// would replay — in ID order.
func (r *DirReport) Pending() []*EntryInfo {
	var out []*EntryInfo
	for _, e := range r.Entries {
		if e.Sealed && !e.Committed {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Inspect scans a journal directory without modifying it (values are counted
// but not decoded, so no codec is needed). A missing directory yields an
// empty report.
func Inspect(dir string) (*DirReport, error) {
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rep := &DirReport{Entries: make(map[uint64]*EntryInfo)}
	for _, name := range names {
		path := filepath.Join(dir, name)
		seq, _ := parseSegName(name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		si := SegmentInfo{Name: name, Path: path, Seq: seq, Size: int64(len(data))}
		headerOK := len(data) >= headerSize &&
			binary.BigEndian.Uint32(data[:4]) == segMagic && data[4] == segVersion
		if headerOK {
			valid, _, ferr := scanFrames(data[headerSize:], func(typ byte, payload []byte) error {
				si.Frames++
				return inspectFrame(rep, &si, typ, payload)
			})
			if ferr != nil {
				return nil, fmt.Errorf("wal: segment %s: %w", name, ferr)
			}
			si.ValidBytes = headerSize + valid
		}
		si.Torn = si.Size > si.ValidBytes
		rep.Segments = append(rep.Segments, si)
	}
	return rep, nil
}

// inspectFrame folds one frame into an inspection report.
func inspectFrame(rep *DirReport, si *SegmentInfo, typ byte, payload []byte) error {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("malformed entry id in frame type %d", typ)
	}
	rest := payload[n:]
	e := rep.Entries[id]
	if e == nil {
		e = &EntryInfo{ID: id}
		rep.Entries[id] = e
	}
	switch typ {
	case frameBegin:
		var err error
		var c int
		if e.Dataset, c, err = readString(rest); err != nil {
			return err
		}
		rest = rest[c:]
		if e.Partition, c, err = readString(rest); err != nil {
			return err
		}
		rest = rest[c:]
		if e.Key, _, err = readString(rest); err != nil {
			return err
		}
		si.Begun = append(si.Begun, id)
	case frameValues:
		count, c := binary.Uvarint(rest)
		if c <= 0 {
			return fmt.Errorf("malformed value count in values frame")
		}
		e.Values += int64(count)
	case frameSeal:
		e.Sealed = true
	case frameCommit:
		e.Committed = true
	default:
		return fmt.Errorf("unknown frame type %d", typ)
	}
	return nil
}

// TruncateTorn truncates a torn segment back to its last valid frame, the
// repair `swcli fsck -fix` applies. It returns the bytes removed.
func TruncateTorn(s SegmentInfo) (int64, error) {
	if !s.Torn {
		return 0, nil
	}
	if err := os.Truncate(s.Path, s.ValidBytes); err != nil {
		return 0, fmt.Errorf("wal: truncate %s: %w", s.Name, err)
	}
	return s.Size - s.ValidBytes, nil
}
