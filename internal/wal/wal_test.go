package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"samplewh/internal/faults"
	"samplewh/internal/obs"
	"samplewh/internal/storage"
)

func openTest(t *testing.T, dir string, opts Options) (*Log[int64], []RecoveredEntry[int64]) {
	t.Helper()
	l, rec, err := Open[int64](dir, storage.Int64Codec{}, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func ingestBatch(t *testing.T, l *Log[int64], ds, part, key string, values []int64, commit bool) {
	t.Helper()
	e, err := l.Begin(ds, part, key, int64(len(values)))
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Append(values); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := e.Seal(int64(len(values))); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if commit {
		if err := e.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	return names
}

func TestCommittedEntriesAreNotReplayed(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{})
	if len(rec) != 0 {
		t.Fatalf("fresh journal recovered %d entries", len(rec))
	}
	for i := 0; i < 5; i++ {
		ingestBatch(t, l, "orders", fmt.Sprintf("p%d", i), "", []int64{1, 2, 3}, true)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec) != 0 {
		t.Fatalf("recovered %d committed entries, want 0", len(rec))
	}
	if n := len(segFiles(t, dir)); n != 0 {
		t.Fatalf("%d segments survive a fully committed journal, want 0", n)
	}
}

func TestSealedUncommittedEntriesAreReplayed(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _ := openTest(t, dir, Options{})
	ingestBatch(t, l, "orders", "p0", "", []int64{1, 2}, true)
	ingestBatch(t, l, "orders", "p1", "client-key-1", []int64{10, 20, 30}, false)
	ingestBatch(t, l, "orders", "p2", "", []int64{7}, false)
	// No Close: the crash happens here. SyncAlways already made the seals
	// durable, so a reopen must see both uncommitted batches.
	l2, rec := openTest(t, dir, Options{Registry: reg})
	if len(rec) != 2 {
		t.Fatalf("recovered %d entries, want 2", len(rec))
	}
	if rec[0].Partition != "p1" || rec[1].Partition != "p2" {
		t.Fatalf("recovered partitions %q, %q; want p1, p2", rec[0].Partition, rec[1].Partition)
	}
	if rec[0].Key != "client-key-1" {
		t.Fatalf("idempotency key = %q, want client-key-1", rec[0].Key)
	}
	if rec[0].Expected != 3 || len(rec[0].Values) != 3 || rec[0].Values[2] != 30 {
		t.Fatalf("recovered entry 0 = %+v", rec[0])
	}
	if got := reg.Counter("wal.replays").Value(); got != 2 {
		t.Fatalf("wal.replays = %d, want 2", got)
	}
	// Committing the replayed entries releases their segment.
	for _, re := range rec {
		if err := l2.CommitRecovered(re.ID); err != nil {
			t.Fatalf("CommitRecovered(%d): %v", re.ID, err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l3, rec := openTest(t, dir, Options{})
	defer l3.Close()
	if len(rec) != 0 {
		t.Fatalf("second recovery replayed %d entries, want 0", len(rec))
	}
}

func TestUnsealedEntriesAreDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	e, err := l.Begin("orders", "p0", "", 100)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Append([]int64{1, 2, 3}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_ = l.Sync() // frames are on disk, but no seal — the client got no ack
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec) != 0 {
		t.Fatalf("recovered %d unsealed entries, want 0", len(rec))
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _ := openTest(t, dir, Options{})
	ingestBatch(t, l, "orders", "keep", "", []int64{1, 2, 3}, false)
	ingestBatch(t, l, "orders", "tear", "", []int64{4, 5, 6}, false)
	names := segFiles(t, dir)
	if len(names) != 1 {
		t.Fatalf("%d segments, want 1", len(names))
	}
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file 3 bytes into the second batch's trailing frames: the
	// crash happened mid-write. The first batch's frames must survive.
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.Segments[0].Frames != 6 {
		t.Fatalf("frames = %d, want 6", rep.Segments[0].Frames)
	}
	cut := int64(len(data)) - 5
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	l2, rec := openTest(t, dir, Options{Registry: reg})
	defer l2.Close()
	if len(rec) != 1 || rec[0].Partition != "keep" {
		t.Fatalf("recovered %+v, want the single 'keep' batch", rec)
	}
	if got := reg.Counter("wal.truncations").Value(); got != 1 {
		t.Fatalf("wal.truncations = %d, want 1", got)
	}
	if fi, err := os.Stat(path); err == nil {
		if fi.Size() >= cut {
			t.Fatalf("torn segment not truncated: size %d >= %d", fi.Size(), cut)
		}
	}
}

func TestInjectedTornAppendRecovers(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk on fire")
	// Fail the 4th append: batch one is frames 1-3 (begin, values, seal);
	// the failure tears batch two's begin frame.
	sched := faults.FailNth{Op: faults.OpWalAppend, N: 4, Err: boom}
	l, _ := openTest(t, dir, Options{Schedule: sched})
	ingestBatch(t, l, "orders", "ok", "", []int64{1, 2}, false)
	_, err := l.Begin("orders", "torn", "", 2)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Begin after injected append fault: err = %v, want %v", err, boom)
	}
	// The journal must keep working after the fault: the poisoned segment is
	// rolled away and a fresh one takes over.
	ingestBatch(t, l, "orders", "after", "", []int64{9}, false)
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec) != 2 {
		t.Fatalf("recovered %d entries, want 2 (ok, after)", len(rec))
	}
	if rec[0].Partition != "ok" || rec[1].Partition != "after" {
		t.Fatalf("recovered %q, %q; want ok, after", rec[0].Partition, rec[1].Partition)
	}
}

func TestInjectedFsyncErrorFailsSeal(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("fsync refused")
	sched := faults.FailNth{Op: faults.OpWalSync, N: 1, Err: boom}
	l, _ := openTest(t, dir, Options{Schedule: sched})
	defer l.Close()
	e, err := l.Begin("orders", "p0", "", 1)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Append([]int64{1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := e.Seal(1); err == nil || !errors.Is(err, boom) {
		t.Fatalf("Seal under injected fsync fault: err = %v, want %v", err, boom)
	}
	// The next seal syncs cleanly — the fault was transient.
	e2, err := l.Begin("orders", "p1", "", 1)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e2.Append([]int64{2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := e2.Seal(1); err != nil {
		t.Fatalf("Seal after fault cleared: %v", err)
	}
}

func TestSegmentRollAndGC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _ := openTest(t, dir, Options{SegmentBytes: 256, Registry: reg})
	var entries []*Entry[int64]
	for i := 0; i < 16; i++ {
		e, err := l.Begin("orders", fmt.Sprintf("p%02d", i), "", 8)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		if err := e.Append([]int64{int64(i), int64(i * 2), int64(i * 3)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := e.Seal(3); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		entries = append(entries, e)
	}
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("%d segments after 16 batches at 256-byte roll threshold, want several", n)
	}
	for _, e := range entries {
		if err := e.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	// Everything committed: only the active segment may remain.
	if n := len(segFiles(t, dir)); n > 1 {
		t.Fatalf("%d segments survive full commit, want <= 1", n)
	}
	if reg.Counter("wal.gc_segments").Value() == 0 {
		t.Fatal("wal.gc_segments did not advance")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAbortDropsEntry(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	e, err := l.Begin("orders", "p0", "", 4)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := e.Append([]int64{1, 2}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	e.Abort()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec) != 0 {
		t.Fatalf("recovered %d aborted entries, want 0", len(rec))
	}
}

// TestReplayIdempotencyProperty is the property test of the recovery
// contract: for random batch mixes crashed at a random byte offset,
// (1) recovery never errors, (2) every recovered batch carries exactly the
// values that were journaled for it (never partial, never doubled), and
// (3) recovery is idempotent — recovering twice without committing yields
// the identical result set.
func TestReplayIdempotencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for round := 0; round < 40; round++ {
		dir := t.TempDir()
		l, _ := openTest(t, dir, Options{Policy: SyncOff, SegmentBytes: 512})
		want := make(map[string][]int64)
		nBatch := 1 + rng.Intn(8)
		for b := 0; b < nBatch; b++ {
			part := fmt.Sprintf("p%d", b)
			n := 1 + rng.Intn(20)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = rng.Int63n(1000)
			}
			commit := rng.Intn(3) == 0
			ingestBatch(t, l, "ds", part, "", vals, commit)
			if !commit {
				want[part] = vals
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		// Crash: chop a random suffix off the newest segment.
		names := segFiles(t, dir)
		if len(names) > 0 && rng.Intn(2) == 0 {
			path := filepath.Join(dir, names[len(names)-1])
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Int63n(fi.Size() + 1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
		}
		check := func(pass string, rec []RecoveredEntry[int64]) map[string]int {
			got := make(map[string]int)
			for _, re := range rec {
				got[re.Partition]++
				vals, ok := want[re.Partition]
				if !ok {
					// Truncation can only lose batches, never resurrect
					// committed ones — unless the commit frame itself was
					// chopped off, in which case the replay is the correct
					// at-least-once outcome and values must still be exact.
					vals = nil
				}
				if vals != nil {
					if len(vals) != len(re.Values) {
						t.Fatalf("round %d %s: partition %s recovered %d values, want %d",
							round, pass, re.Partition, len(re.Values), len(vals))
					}
					for i := range vals {
						if vals[i] != re.Values[i] {
							t.Fatalf("round %d %s: partition %s value[%d] = %d, want %d",
								round, pass, re.Partition, i, re.Values[i], vals[i])
						}
					}
				}
				if int64(len(re.Values)) != re.Expected {
					t.Fatalf("round %d %s: partition %s sealed with %d values but expected %d",
						round, pass, re.Partition, len(re.Values), re.Expected)
				}
			}
			for part, n := range got {
				if n != 1 {
					t.Fatalf("round %d %s: partition %s recovered %d times", round, pass, part, n)
				}
			}
			return got
		}
		l1, rec1 := openTest(t, dir, Options{Policy: SyncOff})
		got1 := check("first", rec1)
		if err := l1.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		l2, rec2 := openTest(t, dir, Options{Policy: SyncOff})
		got2 := check("second", rec2)
		if err := l2.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		if len(got1) != len(got2) {
			t.Fatalf("round %d: recovery not idempotent: %v then %v", round, got1, got2)
		}
		for part := range got1 {
			if got2[part] != got1[part] {
				t.Fatalf("round %d: recovery not idempotent for %s", round, part)
			}
		}
	}
}

func TestInspectReportsTornAndOrphanedSegments(t *testing.T) {
	dir := t.TempDir()
	// Segment 1: fully committed batches (orphaned once a later segment
	// exists). Force tiny segments so each lifecycle lands where we want it.
	l, _ := openTest(t, dir, Options{SegmentBytes: 1})
	e, err := l.Begin("ds", "committed", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append([]int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(1); err != nil {
		t.Fatal(err)
	}
	// Begin the next entry BEFORE committing the first, so the first
	// segment survives (commit-time GC only fires on the leading segment
	// when it is not active; a new active segment must exist first).
	e2, err := l.Begin("ds", "pending", "k2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Append([]int64{2}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Seal(1); err != nil {
		t.Fatal(err)
	}
	// Commit entry 1: its commit frame lands in segment 2 (the active one)
	// and GC removes segment 1. To leave an orphaned file on disk for fsck
	// to find — the "GC crashed mid-sweep" shape — copy segment 1 aside
	// first and resurrect it afterwards.
	seg1 := segFiles(t, dir)[0]
	seg1Path := filepath.Join(dir, seg1)
	data, err := os.ReadFile(seg1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	// A third batch rolls to segment 3 (1-byte roll threshold), giving the
	// torn-tail tear a victim that is not entry 1's commit frame.
	e3, err := l.Begin("ds", "torn", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Append([]int64{3}); err != nil {
		t.Fatal(err)
	}
	if err := e3.Seal(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	names := segFiles(t, dir)
	last := filepath.Join(dir, names[len(names)-1])
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(rep.Segments) != len(names) {
		t.Fatalf("Inspect saw %d segments, want %d", len(rep.Segments), len(names))
	}
	var tornSeen, orphanSeen bool
	for _, s := range rep.Segments {
		if s.Torn {
			tornSeen = true
			removed, err := TruncateTorn(s)
			if err != nil {
				t.Fatalf("TruncateTorn: %v", err)
			}
			if removed == 0 {
				t.Fatal("TruncateTorn removed nothing from a torn segment")
			}
		}
		if rep.Orphaned(s) && s.Name == seg1 {
			orphanSeen = true
		}
	}
	if !tornSeen {
		t.Fatal("Inspect missed the torn tail")
	}
	if !orphanSeen {
		t.Fatal("Inspect missed the orphaned (fully committed) segment")
	}
	// After the -fix truncation the directory inspects clean.
	rep2, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep2.Segments {
		if s.Torn {
			t.Fatalf("segment %s still torn after TruncateTorn", s.Name)
		}
	}
}
