package core

import (
	"math"
	"testing"

	"samplewh/internal/randx"
)

func TestSystematicExactSize(t *testing.T) {
	r := randx.New(1)
	for _, k := range []int64{1, 2, 7, 100} {
		s := NewSystematic[int64](smallCfg(1<<16), k, r)
		const n = 10000
		for v := int64(0); v < n; v++ {
			s.Feed(v)
		}
		fin, err := s.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		// Size is ⌈(n−r+1)/k⌉ for start r ∈ {1..k}: either ⌊n/k⌋ or ⌈n/k⌉.
		lo, hi := n/k, (n+k-1)/k
		if fin.Size() < lo || fin.Size() > hi {
			t.Fatalf("k=%d: size %d outside [%d,%d]", k, fin.Size(), lo, hi)
		}
		if k == 1 && fin.Kind != Exhaustive {
			t.Fatalf("k=1 should be exhaustive, got %v", fin.Kind)
		}
	}
}

func TestSystematicResidueClass(t *testing.T) {
	// All sampled indices must be congruent mod k.
	r := randx.New(2)
	const k = 9
	s := NewSystematic[int64](smallCfg(1<<16), k, r)
	for v := int64(1); v <= 1000; v++ {
		s.Feed(v) // value == 1-based index
	}
	fin, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var residue int64 = -1
	ok := true
	fin.Hist.Each(func(v int64, c int64) {
		if residue == -1 {
			residue = v % k
		} else if v%k != residue {
			ok = false
		}
	})
	if !ok {
		t.Fatal("systematic sample spans multiple residue classes")
	}
}

func TestSystematicInclusionProbability(t *testing.T) {
	// Over many random starts, each element is included with probability
	// 1/k.
	r := randx.New(3)
	const k = 5
	const n = 200
	const trials = 20000
	counts := make([]int64, n)
	for trial := 0; trial < trials; trial++ {
		s := NewSystematic[int64](smallCfg(1<<16), k, r)
		for v := int64(0); v < n; v++ {
			s.Feed(v)
		}
		fin, _ := s.Finalize()
		fin.Hist.Each(func(v int64, c int64) { counts[v]++ })
	}
	want := float64(trials) / k
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestSystematicFeedNMatchesElementwise(t *testing.T) {
	// Run the arithmetic bulk path against an element-wise reference with
	// the same start.
	for seed := uint64(0); seed < 20; seed++ {
		r1 := randx.New(seed)
		r2 := randx.New(seed)
		a := NewSystematic[int64](smallCfg(1<<16), 7, r1)
		b := NewSystematic[int64](smallCfg(1<<16), 7, r2)
		a.FeedN(5, 100)
		a.FeedN(9, 33)
		for i := 0; i < 100; i++ {
			b.Feed(5)
		}
		for i := 0; i < 33; i++ {
			b.Feed(9)
		}
		sa, _ := a.Finalize()
		sb, _ := b.Finalize()
		if !sa.Hist.Equal(sb.Hist) {
			t.Fatalf("seed %d: bulk and element-wise disagree", seed)
		}
	}
}

func TestSystematicPanics(t *testing.T) {
	r := randx.New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0 did not panic")
			}
		}()
		NewSystematic[int64](smallCfg(16), 0, r)
	}()
	s := NewSystematic[int64](smallCfg(16), 2, r)
	if _, err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finalize(); err == nil {
		t.Error("double finalize accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("feed after finalize did not panic")
			}
		}()
		s.Feed(1)
	}()
}

func TestWeightedReservoirCapacity(t *testing.T) {
	r := randx.New(5)
	w := NewWeightedReservoir[int64](smallCfg(1<<16), 100, r)
	for v := int64(0); v < 10000; v++ {
		w.Feed(v, 1)
	}
	if w.SampleSize() != 100 {
		t.Fatalf("size %d", w.SampleSize())
	}
	if w.Seen() != 10000 {
		t.Fatalf("seen %d", w.Seen())
	}
	fin, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if fin.Size() != 100 || fin.ParentSize != 10000 {
		t.Fatalf("finalized %v", fin)
	}
}

func TestWeightedReservoirFavorsHeavyElements(t *testing.T) {
	// Element 0 has weight 100, the rest weight 1; over repeated runs
	// element 0 must appear far more often than an average light element.
	r := randx.New(6)
	const trials = 3000
	const n = 500
	const k = 10
	var heavy, lightTotal int64
	for trial := 0; trial < trials; trial++ {
		w := NewWeightedReservoir[int64](smallCfg(1<<16), k, r.Split())
		for v := int64(0); v < n; v++ {
			wt := 1.0
			if v == 0 {
				wt = 100
			}
			w.Feed(v, wt)
		}
		for _, it := range w.Items() {
			if it.Value == 0 {
				heavy++
			} else {
				lightTotal++
			}
		}
	}
	heavyRate := float64(heavy) / trials
	lightRate := float64(lightTotal) / (trials * (n - 1))
	if heavyRate < 0.7 {
		t.Fatalf("heavy element inclusion rate %v, want well above light elements", heavyRate)
	}
	if heavyRate < 10*lightRate {
		t.Fatalf("heavy rate %v not much larger than light rate %v", heavyRate, lightRate)
	}
}

func TestWeightedReservoirUniformWeightsMatchSRS(t *testing.T) {
	// With equal weights, A-Res degenerates to a simple random sample:
	// every element equally likely.
	r := randx.New(7)
	const trials = 10000
	const n = 100
	const k = 10
	counts := make([]int64, n)
	for trial := 0; trial < trials; trial++ {
		w := NewWeightedReservoir[int64](smallCfg(1<<16), k, r.Split())
		for v := int64(0); v < n; v++ {
			w.Feed(v, 1)
		}
		for _, it := range w.Items() {
			counts[it.Value]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestWeightedReservoirIgnoresBadWeights(t *testing.T) {
	r := randx.New(8)
	w := NewWeightedReservoir[int64](smallCfg(1<<16), 5, r)
	w.Feed(1, 0)
	w.Feed(2, -3)
	w.Feed(3, math.NaN())
	if w.SampleSize() != 0 {
		t.Fatalf("bad-weight elements sampled: %d", w.SampleSize())
	}
	if w.Seen() != 3 {
		t.Fatalf("seen %d", w.Seen())
	}
	if w.TotalWeight() != 0 {
		t.Fatalf("total weight %v", w.TotalWeight())
	}
}

func TestMergeWeightedMatchesSingleStream(t *testing.T) {
	// Distributional check: merging two halves must behave like one
	// reservoir over the concatenation — compare heavy-element inclusion
	// rates.
	r := randx.New(9)
	const trials = 3000
	const n = 400
	const k = 8
	var mergedHeavy, directHeavy int64
	for trial := 0; trial < trials; trial++ {
		feed := func(w *WeightedReservoir[int64], lo, hi int64) {
			for v := lo; v < hi; v++ {
				wt := 1.0
				if v == 0 {
					wt = 50
				}
				w.Feed(v, wt)
			}
		}
		a := NewWeightedReservoir[int64](smallCfg(1<<16), k, r.Split())
		b := NewWeightedReservoir[int64](smallCfg(1<<16), k, r.Split())
		feed(a, 0, n/2)
		feed(b, n/2, n)
		m, err := MergeWeighted(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seen() != n {
			t.Fatalf("merged seen %d", m.Seen())
		}
		if m.SampleSize() != k {
			t.Fatalf("merged size %d", m.SampleSize())
		}
		for _, it := range m.Items() {
			if it.Value == 0 {
				mergedHeavy++
			}
		}
		d := NewWeightedReservoir[int64](smallCfg(1<<16), k, r.Split())
		feed(d, 0, n)
		for _, it := range d.Items() {
			if it.Value == 0 {
				directHeavy++
			}
		}
	}
	mr := float64(mergedHeavy) / trials
	dr := float64(directHeavy) / trials
	if math.Abs(mr-dr) > 0.05 {
		t.Fatalf("merged heavy rate %v vs direct %v", mr, dr)
	}
}

func TestMergeWeightedErrors(t *testing.T) {
	r := randx.New(10)
	a := NewWeightedReservoir[int64](smallCfg(16), 2, r)
	if _, err := MergeWeighted(a, nil); err == nil {
		t.Error("nil reservoir accepted")
	}
	b := NewWeightedReservoir[int64](smallCfg(16), 2, r)
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeWeighted(a, b); err == nil {
		t.Error("finalized reservoir accepted")
	}
}

func TestWeightedReservoirPanics(t *testing.T) {
	r := randx.New(11)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0 did not panic")
			}
		}()
		NewWeightedReservoir[int64](smallCfg(16), 0, r)
	}()
	w := NewWeightedReservoir[int64](smallCfg(16), 1, r)
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("feed after finalize did not panic")
			}
		}()
		w.Feed(1, 1)
	}()
}
