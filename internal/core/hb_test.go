package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// smallCfg admits nf values under the default model.
func smallCfg(nf int64) Config {
	return ConfigForNF(nf)
}

func TestHBExhaustiveWhenSmall(t *testing.T) {
	r := randx.New(1)
	hb := NewHB[int64](smallCfg(64), 1000, r)
	for v := int64(0); v < 20; v++ {
		hb.FeedN(v, 3)
	}
	if hb.Phase() != PhaseExact {
		t.Fatalf("phase = %v, want exact", hb.Phase())
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive {
		t.Fatalf("kind = %v, want exhaustive", s.Kind)
	}
	if s.Size() != 60 || s.ParentSize != 60 {
		t.Fatalf("size=%d parent=%d", s.Size(), s.ParentSize)
	}
	for v := int64(0); v < 20; v++ {
		if s.Hist.Count(v) != 3 {
			t.Fatalf("count(%d) = %d, want 3", v, s.Hist.Count(v))
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHBZipfStaysExhaustive(t *testing.T) {
	// The paper notes that for the Zipf data set "the number of distinct
	// values is small and hence the samples are always exhaustive".
	r := randx.New(2)
	z := randx.NewZipf(1000, 1)
	hb := NewHB[int64](smallCfg(8192), 1<<16, r)
	for i := 0; i < 1<<16; i++ {
		hb.Feed(z.Sample(r))
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive {
		t.Fatalf("Zipf(1000) over 64K elements gave kind %v, want exhaustive", s.Kind)
	}
	if s.Size() != 1<<16 {
		t.Fatalf("exhaustive size = %d", s.Size())
	}
}

func TestHBBernoulliPhaseUniqueData(t *testing.T) {
	r := randx.New(3)
	const n = 1 << 16
	cfg := smallCfg(1024)
	hb := NewHB[int64](cfg, n, r)
	for v := int64(0); v < n; v++ {
		hb.Feed(v)
	}
	if hb.Phase() != PhaseBernoulli {
		t.Fatalf("phase = %v, want bernoulli", hb.Phase())
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != BernoulliKind {
		t.Fatalf("kind = %v", s.Kind)
	}
	if s.Size() >= 1024 {
		t.Fatalf("sample size %d >= nF", s.Size())
	}
	// Sample size should be near q·N.
	want := s.Q * n
	if math.Abs(float64(s.Size())-want) > 6*math.Sqrt(want) {
		t.Fatalf("sample size %d far from q·N = %v", s.Size(), want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHBFootprintNeverExceedsBound(t *testing.T) {
	r := randx.New(4)
	cfg := smallCfg(256)
	hb := NewHB[int64](cfg, 1<<14, r)
	for i := 0; i < 1<<14; i++ {
		hb.Feed(int64(i % 3000)) // mix of duplicates and fresh values
		if fp := hb.CurrentFootprint(); fp > cfg.FootprintBytes {
			t.Fatalf("footprint %d exceeded bound %d after %d elements",
				fp, cfg.FootprintBytes, i+1)
		}
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() > cfg.FootprintBytes {
		t.Fatalf("final footprint %d exceeds bound", s.Footprint())
	}
}

func TestHBReservoirFallback(t *testing.T) {
	// Force phase 3 by lying about N: tell the sampler the partition is
	// tiny (so q is high) and then overfeed it.
	r := randx.New(5)
	cfg := smallCfg(128)
	hb := NewHB[int64](cfg, 200, r) // q will be close to 1
	const actual = 1 << 14
	for v := int64(0); v < actual; v++ {
		hb.Feed(v)
	}
	if hb.Phase() != PhaseReservoir {
		t.Fatalf("phase = %v, want reservoir", hb.Phase())
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != ReservoirKind {
		t.Fatalf("kind = %v", s.Kind)
	}
	if s.Size() != 128 {
		t.Fatalf("reservoir size = %d, want nF = 128", s.Size())
	}
	if s.ParentSize != actual {
		t.Fatalf("parent size = %d", s.ParentSize)
	}
}

func TestHBFeedNMatchesFeedDistribution(t *testing.T) {
	// FeedN(v, n) must be distributionally identical to n Feeds: compare
	// mean sample sizes over repeated runs.
	const trials = 300
	const runs = 64
	var bulkTotal, singleTotal int64
	for trial := 0; trial < trials; trial++ {
		r1 := randx.NewStream(uint64(trial), 1)
		hb1 := NewHB[int64](smallCfg(64), runs*40, r1)
		for v := int64(0); v < runs; v++ {
			hb1.FeedN(v%11, 40)
		}
		s1, _ := hb1.Finalize()
		bulkTotal += s1.Size()

		r2 := randx.NewStream(uint64(trial), 2)
		hb2 := NewHB[int64](smallCfg(64), runs*40, r2)
		for v := int64(0); v < runs; v++ {
			for j := 0; j < 40; j++ {
				hb2.Feed(v % 11)
			}
		}
		s2, _ := hb2.Finalize()
		singleTotal += s2.Size()
	}
	b := float64(bulkTotal) / trials
	s := float64(singleTotal) / trials
	if math.Abs(b-s) > 0.05*math.Max(b, s)+2 {
		t.Fatalf("bulk mean %v vs single mean %v differ", b, s)
	}
}

func TestHBPerElementInclusionUniform(t *testing.T) {
	// Every element of the stream must appear in the final sample with equal
	// probability (distinct values so appearances are attributable).
	r := randx.New(6)
	const n = 512
	const trials = 4000
	cfg := smallCfg(32)
	counts := make([]int64, n)
	var sizeTotal int64
	for trial := 0; trial < trials; trial++ {
		hb := NewHB[int64](cfg, n, r.Split())
		for v := int64(0); v < n; v++ {
			hb.Feed(v)
		}
		s, err := hb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		sizeTotal += s.Size()
		s.Hist.Each(func(v int64, c int64) {
			if c != 1 {
				t.Fatalf("distinct stream produced count %d", c)
			}
			counts[v]++
		})
	}
	meanRate := float64(sizeTotal) / float64(trials*n)
	for v, c := range counts {
		got := float64(c) / trials
		se := math.Sqrt(meanRate * (1 - meanRate) / trials)
		if math.Abs(got-meanRate) > 6*se {
			t.Errorf("element %d inclusion rate %v, want %v (se %v)", v, got, meanRate, se)
		}
	}
}

func TestHBSubsetUniformityGivenSize(t *testing.T) {
	// The formal uniformity property: conditioned on |S| = k, all subsets of
	// size k are equally likely. Tiny population of 6 distinct values,
	// nF = 2 so the sampler is forced through its bounded machinery.
	r := randx.New(7)
	const n = 6
	const trials = 120000
	cfg := smallCfg(2)
	bySize := map[int]map[uint8]int64{}
	for trial := 0; trial < trials; trial++ {
		hb := NewHB[int64](cfg, n, r.Split())
		for v := int64(0); v < n; v++ {
			hb.Feed(v)
		}
		s, err := hb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		var mask uint8
		s.Hist.Each(func(v int64, c int64) { mask |= 1 << uint(v) })
		k := int(s.Size())
		if bySize[k] == nil {
			bySize[k] = map[uint8]int64{}
		}
		bySize[k][mask]++
	}
	for k, dist := range bySize {
		if k == 0 || k == n {
			continue
		}
		var total int64
		for _, c := range dist {
			total += c
		}
		if total < 5000 {
			continue // not enough mass to test this size class
		}
		nSubsets := float64(choose(n, k))
		want := float64(total) / nSubsets
		if want < 20 {
			continue
		}
		for mask, c := range dist {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("size %d subset %06b: %d occurrences, want ~%.0f", k, mask, c, want)
			}
		}
		if float64(len(dist)) < nSubsets {
			t.Errorf("size %d: only %d of %v subsets observed", k, len(dist), nSubsets)
		}
	}
}

// choose computes small binomial coefficients for tests.
func choose(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	res := int64(1)
	for i := 0; i < k; i++ {
		res = res * int64(n-i) / int64(i+1)
	}
	return res
}

func TestHBPanicsAfterFinalize(t *testing.T) {
	r := randx.New(8)
	hb := NewHB[int64](smallCfg(16), 100, r)
	hb.Feed(1)
	if _, err := hb.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Finalize(); err == nil {
		t.Fatal("second Finalize did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Finalize did not panic")
		}
	}()
	hb.Feed(2)
}

func TestHBConstructorPanics(t *testing.T) {
	r := randx.New(9)
	for _, f := range []func(){
		func() { NewHB[int64](smallCfg(16), 0, r) },
		func() { NewHB[int64](Config{FootprintBytes: -1}, 10, r) },
		func() { NewHB[int64](smallCfg(16), 10, r).FeedN(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHBAccessors(t *testing.T) {
	r := randx.New(10)
	hb := NewHB[int64](smallCfg(100), 5000, r)
	if hb.NF() != 100 {
		t.Fatalf("NF = %d", hb.NF())
	}
	if q := hb.Q(); q <= 0 || q >= 1 {
		t.Fatalf("Q = %v", q)
	}
	hb.FeedN(1, 7)
	if hb.Seen() != 7 {
		t.Fatalf("Seen = %d", hb.Seen())
	}
	if hb.SampleSize() != 7 {
		t.Fatalf("SampleSize = %d", hb.SampleSize())
	}
}

func TestHBStringValues(t *testing.T) {
	// The sampler is generic; exercise it with string values and a wider
	// size model.
	r := randx.New(11)
	cfg := Config{
		FootprintBytes: 64 * 20,
		SizeModel:      histogram.SizeModel{ValueBytes: 20, CountBytes: 4},
		ExceedProb:     0.001,
	}
	hb := NewHB[string](cfg, 1000, r)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 1000; i++ {
		hb.Feed(words[i%len(words)])
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive {
		t.Fatalf("4 distinct strings should stay exhaustive, got %v", s.Kind)
	}
	if s.Hist.Count("alpha") != 250 {
		t.Fatalf("count(alpha) = %d", s.Hist.Count("alpha"))
	}
}
