package core

import (
	"samplewh/internal/obs"
)

// samplerObs bundles a sampler's cached metric handles. The zero value (all
// nil handles) makes every recording call a no-op, so uninstrumented
// samplers pay only a nil-check per event — instrumentation is strictly
// opt-in via the samplers' Instrument methods.
//
// Metric names follow the catalog in README.md §Observability:
//
//	<component>.items              elements fed (counter; batched — exact at
//	                               every traced event, else ≤ 4096 behind)
//	<component>.accepts            phase-2 Bernoulli acceptances (counter)
//	<component>.reservoir_inserts  phase-3 reservoir replacements (counter)
//	<component>.phase_transitions  boundary crossings (counter)
//	<component>.finalized          samplers finalized (counter)
//	core.purge.bernoulli / .reservoir   purge invocations (counters)
//	core.purge.dropped                  elements dropped by purges (counter)
//	<component>.final_sample_size        histogram of final sample sizes
//	core.footprint.final_bytes           histogram of final footprints
type samplerObs struct {
	reg       *obs.Registry
	component string
	partition string

	items       *obs.Counter
	accepts     *obs.Counter
	inserts     *obs.Counter
	transitions *obs.Counter

	// itemsPending batches the per-element item count locally so the feed
	// hot path never touches the shared counter: samplers are
	// single-goroutine by contract, so a plain field is race-free. The
	// batch is published every itemsFlushBatch elements and at every
	// transition/purge/finalize, keeping the shared counter exact at each
	// traced event and at most one batch behind in between.
	itemsPending int64
}

// itemsFlushBatch bounds how far <component>.items may trail the true count
// between boundary flushes.
const itemsFlushBatch = 1 << 12

// newSamplerObs caches the hot-path handles for one sampler. A nil registry
// yields the all-nil no-op bundle.
func newSamplerObs(r *obs.Registry, component, partition string) samplerObs {
	return samplerObs{
		reg:         r,
		component:   component,
		partition:   partition,
		items:       r.Counter(component + ".items"),
		accepts:     r.Counter(component + ".accepts"),
		inserts:     r.Counter(component + ".reservoir_inserts"),
		transitions: r.Counter(component + ".phase_transitions"),
	}
}

// countItems accumulates n fed elements into the local batch, publishing to
// the shared counter only when the batch fills.
func (o *samplerObs) countItems(n int64) {
	if o.items == nil {
		return
	}
	o.itemsPending += n
	if o.itemsPending >= itemsFlushBatch {
		o.items.Add(o.itemsPending)
		o.itemsPending = 0
	}
}

// flushItems publishes any locally-batched item count; boundary recorders
// call it so counters are exact whenever an event fires.
func (o *samplerObs) flushItems() {
	if o.itemsPending != 0 {
		o.items.Add(o.itemsPending)
		o.itemsPending = 0
	}
}

// transition records exactly one phase-boundary crossing: the counter bump
// plus (when tracing) one EvPhaseTransition event.
func (o *samplerObs) transition(from, to Phase, seen, sampleSize, footprint int64) {
	o.flushItems()
	o.transitions.Inc()
	if o.reg.Tracing() {
		o.reg.Emit(obs.Event{
			Type:      obs.EvPhaseTransition,
			Component: o.component,
			Partition: o.partition,
			Labels:    map[string]string{"from": from.String(), "to": to.String()},
			Values: map[string]int64{
				"seen":        seen,
				"sample_size": sampleSize,
				"footprint":   footprint,
			},
		})
	}
}

// purge records one in-place subsampling of the compact sample.
func (o *samplerObs) purge(kind string, before, after, seen int64) {
	if o.reg == nil {
		return
	}
	o.flushItems()
	// Purges happen at most a handful of times per sampler; the by-name
	// lookups here are off the hot path.
	o.reg.Counter("core.purge." + kind).Inc()
	o.reg.Counter("core.purge.dropped").Add(before - after)
	if o.reg.Tracing() {
		o.reg.Emit(obs.Event{
			Type:      obs.EvPurge,
			Component: o.component,
			Partition: o.partition,
			Labels:    map[string]string{"kind": kind},
			Values:    map[string]int64{"before": before, "after": after, "seen": seen},
		})
	}
}

// finalize records the finished sample's kind, size and footprint
// occupancy against the bound F.
func (o *samplerObs) finalize(kind Kind, seen, sampleSize, footprint int64) {
	if o.reg == nil {
		return
	}
	o.flushItems()
	o.reg.Counter(o.component + ".finalized").Inc()
	o.reg.Histogram(o.component + ".final_sample_size").Observe(sampleSize)
	o.reg.Histogram("core.footprint.final_bytes").Observe(footprint)
	if o.reg.Tracing() {
		o.reg.Emit(obs.Event{
			Type:      obs.EvFinalize,
			Component: o.component,
			Partition: o.partition,
			Labels:    map[string]string{"kind": kind.String()},
			Values: map[string]int64{
				"seen":        seen,
				"sample_size": sampleSize,
				"footprint":   footprint,
			},
		})
	}
}
