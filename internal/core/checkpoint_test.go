package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"samplewh/internal/randx"
)

// TestHBCheckpointResumeExactSequence is the strongest checkpoint property:
// checkpoint mid-stream, resume, continue feeding — the final sample must be
// IDENTICAL to an uninterrupted run with the same seed, because the RNG
// state travels with the checkpoint.
func TestHBCheckpointResumeExactSequence(t *testing.T) {
	for _, cut := range []int64{100, 5000, 15000} { // exact, bernoulli and late phases
		cfg := smallCfg(128)
		const n = 20000

		// Uninterrupted reference run.
		ref := NewHB[int64](cfg, n, randx.New(55))
		for v := int64(0); v < n; v++ {
			ref.Feed(v)
		}
		want, err := ref.Finalize()
		if err != nil {
			t.Fatal(err)
		}

		// Interrupted run: checkpoint at cut, resume, continue.
		hb := NewHB[int64](cfg, n, randx.New(55))
		for v := int64(0); v < cut; v++ {
			hb.Feed(v)
		}
		st, err := hb.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ResumeHBFromState(st)
		if err != nil {
			t.Fatal(err)
		}
		for v := cut; v < n; v++ {
			resumed.Feed(v)
		}
		got, err := resumed.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.ParentSize != want.ParentSize {
			t.Fatalf("cut=%d: metadata %v vs %v", cut, got, want)
		}
		if !got.Hist.Equal(want.Hist) {
			t.Fatalf("cut=%d: resumed sample differs from uninterrupted run", cut)
		}
	}
}

// TestHRCheckpointResumeExactSequence mirrors the HB test for Algorithm HR.
func TestHRCheckpointResumeExactSequence(t *testing.T) {
	for _, cut := range []int64{50, 2000, 9000} {
		cfg := smallCfg(64)
		const n = 12000

		ref := NewHR[int64](cfg, randx.New(56))
		for v := int64(0); v < n; v++ {
			ref.Feed(v)
		}
		want, err := ref.Finalize()
		if err != nil {
			t.Fatal(err)
		}

		hr := NewHR[int64](cfg, randx.New(56))
		for v := int64(0); v < cut; v++ {
			hr.Feed(v)
		}
		st, err := hr.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ResumeHRFromState(st)
		if err != nil {
			t.Fatal(err)
		}
		for v := cut; v < n; v++ {
			resumed.Feed(v)
		}
		got, err := resumed.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Hist.Equal(want.Hist) {
			t.Fatalf("cut=%d: resumed sample differs from uninterrupted run", cut)
		}
	}
}

// TestCheckpointGobRoundTrip serializes the checkpoint through encoding/gob
// — the intended persistence path — and resumes from the decoded bytes.
func TestCheckpointGobRoundTrip(t *testing.T) {
	cfg := smallCfg(64)
	hb := NewHB[int64](cfg, 10000, randx.New(57))
	for v := int64(0); v < 6000; v++ {
		hb.Feed(v)
	}
	st, err := hb.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded HBState[int64]
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeHBFromState(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(6000); v < 10000; v++ {
		resumed.Feed(v)
	}
	// Reference.
	ref := NewHB[int64](cfg, 10000, randx.New(57))
	for v := int64(0); v < 10000; v++ {
		ref.Feed(v)
	}
	want, _ := ref.Finalize()
	got, _ := resumed.Finalize()
	if !got.Hist.Equal(want.Hist) {
		t.Fatal("gob round trip broke exact resumption")
	}
}

// TestCheckpointContinuesAfterCapture verifies the original sampler remains
// usable after Checkpoint (the snapshot must be deep).
func TestCheckpointContinuesAfterCapture(t *testing.T) {
	cfg := smallCfg(32)
	hr := NewHR[int64](cfg, randx.New(58))
	for v := int64(0); v < 500; v++ {
		hr.Feed(v)
	}
	st, err := hr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the original after the snapshot.
	for v := int64(500); v < 5000; v++ {
		hr.Feed(v)
	}
	if _, err := hr.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The snapshot must still resume from 500 seen.
	resumed, err := ResumeHRFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Seen() != 500 {
		t.Fatalf("resumed Seen = %d, want 500", resumed.Seen())
	}
}

// TestCheckpointErrors covers the error paths.
func TestCheckpointErrors(t *testing.T) {
	cfg := smallCfg(16)
	hb := NewHB[int64](cfg, 100, randx.New(59))
	hb.Feed(1)
	if _, err := hb.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Checkpoint(); err == nil {
		t.Error("checkpoint after finalize accepted")
	}
	hr := NewHR[int64](cfg, randx.New(60))
	if _, err := hr.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := hr.Checkpoint(); err == nil {
		t.Error("HR checkpoint after finalize accepted")
	}

	// Invalid states on resume.
	if _, err := ResumeHBFromState(HBState[int64]{}); err == nil {
		t.Error("zero HB state accepted")
	}
	if _, err := ResumeHRFromState(HRState[int64]{}); err == nil {
		t.Error("zero HR state accepted")
	}
	bad := HBState[int64]{Config: cfg, Phase: PhaseReservoir, RNG: randx.New(1).State()}
	if _, err := ResumeHBFromState(bad); err == nil {
		t.Error("reservoir phase without skipper accepted")
	}
	badHR := HRState[int64]{Config: cfg, Phase: PhaseReservoir, RNG: randx.New(1).State()}
	if _, err := ResumeHRFromState(badHR); err == nil {
		t.Error("HR reservoir phase without skipper accepted")
	}
	badPhase := HBState[int64]{Config: cfg, Phase: Phase(9), RNG: randx.New(1).State()}
	if _, err := ResumeHBFromState(badPhase); err == nil {
		t.Error("invalid phase accepted")
	}
}

// TestRNGStateRoundTrip verifies randx state capture resumes the exact
// stream.
func TestRNGStateRoundTrip(t *testing.T) {
	r := randx.New(123)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	st := r.State()
	r2 := randx.FromState(st)
	for i := 0; i < 1000; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatalf("divergence at draw %d", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("even-increment state accepted")
			}
		}()
		randx.FromState(randx.State{IncLo: 2})
	}()
}
