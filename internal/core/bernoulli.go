package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/obs"
	"samplewh/internal/randx"
)

// Sampler is the common contract of all partition samplers: values are fed
// one at a time (or in runs of equal values) and Finalize yields the
// self-describing compact Sample.
//
// FeedN(v, n) is statistically identical to calling Feed(v) n times but lets
// the implementations use binomial and skip shortcuts so that merging never
// needs to expand a compact histogram into a bag (paper §4.1).
type Sampler[V comparable] interface {
	// Feed processes the next arriving data element.
	Feed(v V)
	// FeedN processes a run of n consecutive arrivals of the same value.
	FeedN(v V, n int64)
	// Seen returns the number of data elements processed so far.
	Seen() int64
	// Finalize converts the in-progress state into a Sample. The sampler
	// must not be fed after Finalize.
	Finalize() (*Sample[V], error)
}

// BernoulliSampler draws a plain Bern(q) sample (paper §3.1): every arriving
// element is included independently with probability q. The sample is kept
// in compact form. The footprint is NOT bounded a priori — this primitive
// underlies Algorithm SB and the phase-2 machinery of Algorithm HB.
type BernoulliSampler[V comparable] struct {
	cfg       Config
	q         float64
	hist      *histogram.Histogram[V]
	seen      int64
	src       randx.Source
	finalized bool
	o         samplerObs
}

// Instrument routes the sampler's metrics and events into reg, labelled
// with the given partition ID (empty is fine). Call it before the first
// Feed; a nil registry leaves the sampler uninstrumented.
func (b *BernoulliSampler[V]) Instrument(reg *obs.Registry, partition string) {
	b.o = newSamplerObs(reg, "core.sb", partition)
}

// NewBernoulli returns a Bern(q) sampler. It panics if q is outside [0, 1].
func NewBernoulli[V comparable](cfg Config, q float64, src randx.Source) *BernoulliSampler[V] {
	cfg = cfg.normalized()
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("core: NewBernoulli with q = %v outside [0,1]", q))
	}
	return &BernoulliSampler[V]{
		cfg:  cfg,
		q:    q,
		hist: histogram.New[V](cfg.SizeModel),
		src:  src,
	}
}

// Q returns the sampling rate.
func (b *BernoulliSampler[V]) Q() float64 { return b.q }

// Seen returns the number of elements processed.
func (b *BernoulliSampler[V]) Seen() int64 { return b.seen }

// SampleSize returns the current number of sampled elements.
func (b *BernoulliSampler[V]) SampleSize() int64 { return b.hist.Size() }

// Feed processes one arriving element.
func (b *BernoulliSampler[V]) Feed(v V) { b.FeedN(v, 1) }

// FeedN processes a run of n equal values with a single binomial draw.
func (b *BernoulliSampler[V]) FeedN(v V, n int64) {
	if b.finalized {
		panic("core: BernoulliSampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	b.o.countItems(n)
	b.seen += n
	if m := randx.Binomial(b.src, n, b.q); m > 0 {
		b.hist.Insert(v, m)
		b.o.accepts.Add(m)
	}
}

// Finalize returns the Bern(q) sample of everything fed.
func (b *BernoulliSampler[V]) Finalize() (*Sample[V], error) {
	if b.finalized {
		return nil, fmt.Errorf("core: BernoulliSampler already finalized")
	}
	b.finalized = true
	out := &Sample[V]{
		Kind:       BernoulliKind,
		Hist:       b.hist,
		ParentSize: b.seen,
		Q:          b.q,
		Config:     b.cfg,
	}
	b.o.finalize(out.Kind, b.seen, out.Size(), out.Footprint())
	return out, nil
}

// SB is Algorithm SB, the paper's "stratified Bernoulli" benchmark scheme
// (§5): sample every partition at one fixed rate and union the results. It
// is simply a named BernoulliSampler; the interesting part is SBMerge.
type SB[V comparable] struct {
	BernoulliSampler[V]
}

// NewSB returns an Algorithm SB sampler at the fixed rate q.
func NewSB[V comparable](cfg Config, q float64, src randx.Source) *SB[V] {
	return &SB[V]{*NewBernoulli[V](cfg, q, src)}
}

// SBMerge unions two Bernoulli samples of disjoint partitions. When the
// rates are equal the union is itself a Bern(q) sample of the union of the
// partitions (paper §3.1); when they differ, the higher-rate sample is first
// thinned with purgeBernoulli to equalize the rates (paper §4.1, last
// paragraph). The inputs are consumed.
func SBMerge[V comparable](s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	if s1.Kind != BernoulliKind || s2.Kind != BernoulliKind {
		return nil, fmt.Errorf("core: SBMerge requires two Bernoulli samples, got %s and %s",
			s1.Kind, s2.Kind)
	}
	q := s1.Q
	if s2.Q < q {
		q = s2.Q
	}
	if s1.Q > q {
		PurgeBernoulli(s1.Hist, q/s1.Q, src)
	}
	if s2.Q > q {
		PurgeBernoulli(s2.Hist, q/s2.Q, src)
	}
	s1.Hist.Join(s2.Hist)
	return &Sample[V]{
		Kind:       BernoulliKind,
		Hist:       s1.Hist,
		ParentSize: s1.ParentSize + s2.ParentSize,
		Q:          q,
		Config:     s1.Config,
	}, nil
}

// ReservoirSampler maintains a classic size-k simple random sample without
// replacement (paper §3.2), using Vitter skips between inclusions. It is the
// standalone primitive; Algorithms HB and HR embed the same machinery with
// their compact phase-1 front ends.
type ReservoirSampler[V comparable] struct {
	cfg       Config
	k         int64
	bag       []V
	seen      int64
	next      int64 // 1-based index of the next element to include
	sk        *randx.Skipper
	src       randx.Source
	finalized bool
}

// NewReservoir returns a reservoir sampler of capacity k. It panics if
// k < 1.
func NewReservoir[V comparable](cfg Config, k int64, src randx.Source) *ReservoirSampler[V] {
	cfg = cfg.normalized()
	if k < 1 {
		panic(fmt.Sprintf("core: NewReservoir with k = %d < 1", k))
	}
	return &ReservoirSampler[V]{
		cfg: cfg,
		k:   k,
		bag: make([]V, 0, k),
		src: src,
	}
}

// K returns the reservoir capacity.
func (r *ReservoirSampler[V]) K() int64 { return r.k }

// Seen returns the number of elements processed.
func (r *ReservoirSampler[V]) Seen() int64 { return r.seen }

// SampleSize returns the current reservoir occupancy.
func (r *ReservoirSampler[V]) SampleSize() int64 { return int64(len(r.bag)) }

// Feed processes one arriving element.
func (r *ReservoirSampler[V]) Feed(v V) { r.FeedN(v, 1) }

// FeedN processes a run of n equal values, jumping between inclusions with
// Vitter skips so the cost is proportional to the number of inclusions.
func (r *ReservoirSampler[V]) FeedN(v V, n int64) {
	if r.finalized {
		panic("core: ReservoirSampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	// Warm-up: the first k elements always enter the reservoir.
	for n > 0 && int64(len(r.bag)) < r.k {
		r.bag = append(r.bag, v)
		r.seen++
		n--
	}
	if n == 0 {
		return
	}
	if r.sk == nil {
		r.sk = randx.NewSkipper(r.src, r.k)
		r.next = r.seen + 1 + r.sk.Skip(r.seen)
	}
	end := r.seen + n
	for r.next <= end {
		r.bag[randx.Intn(r.src, len(r.bag))] = v
		r.next = r.next + 1 + r.sk.Skip(r.next)
	}
	r.seen = end
}

// Finalize returns the simple random sample collected so far. If the stream
// never exceeded the reservoir capacity the sample holds the whole partition
// and is reported as Exhaustive, which lets merges exploit it.
func (r *ReservoirSampler[V]) Finalize() (*Sample[V], error) {
	if r.finalized {
		return nil, fmt.Errorf("core: ReservoirSampler already finalized")
	}
	r.finalized = true
	s := &Sample[V]{
		Kind:       ReservoirKind,
		Hist:       histogram.FromBag(r.cfg.SizeModel, r.bag),
		ParentSize: r.seen,
		Config:     r.cfg,
	}
	if r.seen == int64(len(r.bag)) {
		s.Kind = Exhaustive
		s.Q = 1
	}
	return s, nil
}

var (
	_ Sampler[int64] = (*BernoulliSampler[int64])(nil)
	_ Sampler[int64] = (*ReservoirSampler[int64])(nil)
)
