package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// DefaultPurgeFactor is the default multiplicative rate reduction applied at
// each concise-sampling purge step (q' = factor · q).
const DefaultPurgeFactor = 0.8

// ConciseSampler implements the concise sampling scheme of Gibbons & Matias
// (SIGMOD 1998) as described in the paper's §3.3: a compact bounded
// histogram whose Bernoulli sampling rate is systematically decreased to
// keep the footprint at or below F.
//
// The paper proves this scheme is NOT uniform — samples with fewer distinct
// values are favored, so infrequent values are underrepresented — which is
// exactly why Algorithms HB and HR replace it. It is provided as a baseline,
// and the non-uniformity is demonstrated empirically by the §3.3
// counterexample test and experiment.
type ConciseSampler[V comparable] struct {
	cfg       Config
	factor    float64
	q         float64
	hist      *histogram.Histogram[V]
	seen      int64
	purges    int64
	src       randx.Source
	finalized bool
}

// NewConcise returns a concise sampler with footprint bound cfg.FootprintBytes
// and purge factor (0 < factor < 1; 0 selects DefaultPurgeFactor).
func NewConcise[V comparable](cfg Config, factor float64, src randx.Source) *ConciseSampler[V] {
	cfg = cfg.normalized()
	if factor == 0 {
		factor = DefaultPurgeFactor
	}
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("core: NewConcise with purge factor %v outside (0,1)", factor))
	}
	return &ConciseSampler[V]{
		cfg:    cfg,
		factor: factor,
		q:      1,
		hist:   histogram.New[V](cfg.SizeModel),
		src:    src,
	}
}

// Q returns the current sampling rate.
func (c *ConciseSampler[V]) Q() float64 { return c.q }

// Purges returns the number of purge steps executed so far.
func (c *ConciseSampler[V]) Purges() int64 { return c.purges }

// Seen returns the number of elements processed.
func (c *ConciseSampler[V]) Seen() int64 { return c.seen }

// SampleSize returns the current number of sampled data elements.
func (c *ConciseSampler[V]) SampleSize() int64 { return c.hist.Size() }

// Feed processes the next arriving data element: include it with the current
// probability q; if its insertion would push the footprint past F, purge
// (repeatedly, if the luck of the draw frees no space) before inserting.
func (c *ConciseSampler[V]) Feed(v V) {
	if c.finalized {
		panic("core: ConciseSampler fed after Finalize")
	}
	c.seen++
	if !randx.Bernoulli(c.src, c.q) {
		return
	}
	for c.footprintAfter(v) > c.cfg.FootprintBytes {
		newQ := c.q * c.factor
		// The pending element must survive the same rate reduction as the
		// elements already in the sample.
		keepPending := randx.Bernoulli(c.src, newQ/c.q)
		PurgeBernoulli(c.hist, newQ/c.q, c.src)
		c.q = newQ
		c.purges++
		if !keepPending {
			return
		}
	}
	c.hist.Insert(v, 1)
}

// FeedN processes a run of n equal values one element at a time (the purge
// interleaving admits no exact bulk shortcut).
func (c *ConciseSampler[V]) FeedN(v V, n int64) {
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	for i := int64(0); i < n; i++ {
		c.Feed(v)
	}
}

// footprintAfter returns the footprint the histogram would have after one
// more occurrence of v.
func (c *ConciseSampler[V]) footprintAfter(v V) int64 {
	m := c.cfg.SizeModel
	switch c.hist.Count(v) {
	case 0:
		return c.hist.Footprint() + m.PairBytes(1)
	case 1:
		return c.hist.Footprint() + m.PairBytes(2) - m.PairBytes(1)
	default:
		return c.hist.Footprint()
	}
}

// Finalize returns the concise sample. The Kind is reported as Bernoulli
// with the final rate — callers must remember that, unlike Algorithm HB
// output, this sample is not statistically uniform.
func (c *ConciseSampler[V]) Finalize() (*Sample[V], error) {
	if c.finalized {
		return nil, fmt.Errorf("core: ConciseSampler already finalized")
	}
	c.finalized = true
	kind := BernoulliKind
	if c.q == 1 {
		kind = Exhaustive
	}
	return &Sample[V]{
		Kind:       kind,
		Hist:       c.hist,
		ParentSize: c.seen,
		Q:          c.q,
		Config:     c.cfg,
	}, nil
}

var _ Sampler[int64] = (*ConciseSampler[int64])(nil)

// CountingSampler implements the counting-sample extension of concise
// sampling (Gibbons & Matias; paper §3.3): once a value enters the sample,
// every later occurrence is counted exactly (no coin flip), and deletions in
// the parent data set can be propagated. Like concise sampling it is not
// uniform; it is provided for completeness as the deletion-capable baseline.
type CountingSampler[V comparable] struct {
	cfg       Config
	factor    float64
	q         float64
	hist      *histogram.Histogram[V]
	seen      int64
	purges    int64
	src       randx.Source
	finalized bool
}

// NewCounting returns a counting sampler (see NewConcise for parameters).
func NewCounting[V comparable](cfg Config, factor float64, src randx.Source) *CountingSampler[V] {
	cfg = cfg.normalized()
	if factor == 0 {
		factor = DefaultPurgeFactor
	}
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("core: NewCounting with purge factor %v outside (0,1)", factor))
	}
	return &CountingSampler[V]{
		cfg:    cfg,
		factor: factor,
		q:      1,
		hist:   histogram.New[V](cfg.SizeModel),
		src:    src,
	}
}

// Q returns the current admission rate for new values.
func (c *CountingSampler[V]) Q() float64 { return c.q }

// Seen returns the number of insertions processed.
func (c *CountingSampler[V]) Seen() int64 { return c.seen }

// SampleSize returns the current number of counted data elements.
func (c *CountingSampler[V]) SampleSize() int64 { return c.hist.Size() }

// Feed processes an insertion of v into the parent data set.
func (c *CountingSampler[V]) Feed(v V) {
	if c.finalized {
		panic("core: CountingSampler fed after Finalize")
	}
	c.seen++
	if c.hist.Count(v) > 0 {
		// Values already in the sample count every occurrence exactly;
		// the count never changes the footprint beyond the pair upgrade,
		// which was paid at admission.
		c.hist.Insert(v, 1)
		return
	}
	if !randx.Bernoulli(c.src, c.q) {
		return
	}
	for c.footprintAfter(v) > c.cfg.FootprintBytes {
		newQ := c.q * c.factor
		keepPending := randx.Bernoulli(c.src, newQ/c.q)
		c.purgeCounting(newQ)
		c.q = newQ
		c.purges++
		if !keepPending {
			return
		}
	}
	c.hist.Insert(v, 1)
}

// FeedN processes a run of n equal insertions.
func (c *CountingSampler[V]) FeedN(v V, n int64) {
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	for i := int64(0); i < n; i++ {
		c.Feed(v)
	}
}

// Delete processes a deletion of v from the parent data set: if v is
// tracked, its count is decremented (and the value dropped at zero). This is
// the capability concise sampling lacks.
func (c *CountingSampler[V]) Delete(v V) {
	if c.finalized {
		panic("core: CountingSampler fed after Finalize")
	}
	if c.seen > 0 {
		c.seen--
	}
	if c.hist.Count(v) > 0 {
		c.hist.Remove(v, 1)
	}
}

// purgeCounting performs the Gibbons–Matias counting-sample purge to the new
// rate newQ: for each tracked value, its "admission" survives with
// probability newQ/q; if the admission dies, each of the remaining counted
// occurrences is independently re-admitted with probability newQ.
func (c *CountingSampler[V]) purgeCounting(newQ float64) {
	ratio := newQ / c.q
	for i := 0; i < c.hist.Distinct(); {
		e := c.hist.Entry(i)
		if randx.Bernoulli(c.src, ratio) {
			i++
			continue
		}
		kept := int64(0)
		if e.Count > 1 {
			kept = randx.Binomial(c.src, e.Count-1, newQ)
		}
		before := c.hist.Distinct()
		c.hist.SetCount(i, kept)
		if c.hist.Distinct() == before {
			i++
		}
	}
}

// footprintAfter mirrors ConciseSampler.footprintAfter.
func (c *CountingSampler[V]) footprintAfter(v V) int64 {
	m := c.cfg.SizeModel
	switch c.hist.Count(v) {
	case 0:
		return c.hist.Footprint() + m.PairBytes(1)
	case 1:
		return c.hist.Footprint() + m.PairBytes(2) - m.PairBytes(1)
	default:
		return c.hist.Footprint()
	}
}

// Finalize returns the counting sample (not uniform; see type comment).
func (c *CountingSampler[V]) Finalize() (*Sample[V], error) {
	if c.finalized {
		return nil, fmt.Errorf("core: CountingSampler already finalized")
	}
	c.finalized = true
	kind := BernoulliKind
	if c.q == 1 {
		kind = Exhaustive
	}
	return &Sample[V]{
		Kind:       kind,
		Hist:       c.hist,
		ParentSize: c.seen,
		Q:          c.q,
		Config:     c.cfg,
	}, nil
}

var _ Sampler[int64] = (*CountingSampler[int64])(nil)
