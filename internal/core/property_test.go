package core

import (
	"testing"
	"testing/quick"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// TestPropertyHBInvariants drives Algorithm HB with random operation
// sequences and asserts the paper's hard guarantees at every step: the
// footprint never exceeds F, the element count is conserved, and the final
// sample is internally consistent.
func TestPropertyHBInvariants(t *testing.T) {
	check := func(seed uint64, nfRaw uint8, ops []uint16) bool {
		nf := int64(nfRaw%60) + 4
		cfg := ConfigForNF(nf)
		expected := int64(len(ops))*3 + 1
		hb := NewHB[int64](cfg, expected, randx.New(seed))
		var fed int64
		for _, op := range ops {
			v := int64(op % 97)
			n := int64(op%5) + 1
			hb.FeedN(v, n)
			fed += n
			if hb.CurrentFootprint() > cfg.FootprintBytes {
				return false
			}
			if hb.Seen() != fed {
				return false
			}
		}
		s, err := hb.Finalize()
		if err != nil {
			return false
		}
		if s.ParentSize != fed {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		return s.Footprint() <= cfg.FootprintBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHRInvariants mirrors TestPropertyHBInvariants for HR.
func TestPropertyHRInvariants(t *testing.T) {
	check := func(seed uint64, nfRaw uint8, ops []uint16) bool {
		nf := int64(nfRaw%60) + 4
		cfg := ConfigForNF(nf)
		hr := NewHR[int64](cfg, randx.New(seed))
		var fed int64
		for _, op := range ops {
			v := int64(op % 97)
			n := int64(op%5) + 1
			hr.FeedN(v, n)
			fed += n
			if hr.CurrentFootprint() > cfg.FootprintBytes {
				return false
			}
		}
		s, err := hr.Finalize()
		if err != nil {
			return false
		}
		if s.ParentSize != fed || s.Validate() != nil {
			return false
		}
		if s.Kind == ReservoirKind && s.Size() > nf {
			return false
		}
		return s.Footprint() <= cfg.FootprintBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPurgeReservoirSize asserts PurgeReservoir always leaves
// exactly min(m, |S|) elements, preserves value membership, and never
// invents counts, for random histograms.
func TestPropertyPurgeReservoirSize(t *testing.T) {
	check := func(seed uint64, counts []uint8, mRaw uint16) bool {
		h := histogram.New[int64](histogram.DefaultSizeModel)
		for i, c := range counts {
			if c%7 > 0 {
				h.Insert(int64(i), int64(c%7))
			}
		}
		orig := h.Clone()
		m := int64(mRaw % 64)
		PurgeReservoir(h, m, randx.New(seed))
		want := m
		if orig.Size() < m {
			want = orig.Size()
		}
		if h.Size() != want {
			return false
		}
		ok := true
		h.Each(func(v int64, c int64) {
			if c > orig.Count(v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPurgeBernoulliSubset asserts PurgeBernoulli never increases
// any count and preserves the size model accounting.
func TestPropertyPurgeBernoulliSubset(t *testing.T) {
	check := func(seed uint64, counts []uint8, qRaw uint8) bool {
		h := histogram.New[int64](histogram.DefaultSizeModel)
		for i, c := range counts {
			if c%9 > 0 {
				h.Insert(int64(i), int64(c%9))
			}
		}
		orig := h.Clone()
		q := float64(qRaw) / 255
		PurgeBernoulli(h, q, randx.New(seed))
		ok := h.Size() <= orig.Size()
		h.Each(func(v int64, c int64) {
			if c > orig.Count(v) {
				ok = false
			}
		})
		// Footprint must match a from-scratch recomputation.
		var fp int64
		h.Each(func(_ int64, c int64) { fp += histogram.DefaultSizeModel.PairBytes(c) })
		return ok && fp == h.Footprint()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergeParentAdditive asserts that for random disjoint
// partition sizes and any algorithm mix, the merged ParentSize is the sum,
// the merged footprint respects the bound, and Validate passes.
func TestPropertyMergeParentAdditive(t *testing.T) {
	check := func(seed uint64, aRaw, bRaw uint16, hbA, hbB bool) bool {
		nA := int64(aRaw%4000) + 10
		nB := int64(bRaw%4000) + 10
		cfg := ConfigForNF(32)
		rng := randx.New(seed)
		mk := func(lo, n int64, hb bool) *Sample[int64] {
			var smp Sampler[int64]
			if hb {
				smp = NewHB[int64](cfg, n, rng.Split())
			} else {
				smp = NewHR[int64](cfg, rng.Split())
			}
			for v := lo; v < lo+n; v++ {
				smp.Feed(v)
			}
			s, err := smp.Finalize()
			if err != nil {
				return nil
			}
			return s
		}
		s1 := mk(0, nA, hbA)
		s2 := mk(1<<20, nB, hbB)
		if s1 == nil || s2 == nil {
			return false
		}
		m, err := Merge(s1, s2, rng)
		if err != nil {
			return false
		}
		if m.ParentSize != nA+nB {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		return m.Footprint() <= cfg.FootprintBytes ||
			m.Kind == Exhaustive // exhaustive unions of tiny partitions may be over NF values but under F bytes anyway
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHistogramSampleRoundTrip asserts any finalized sample's
// histogram expands and rebuilds to an equal histogram.
func TestPropertyHistogramSampleRoundTrip(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		hr := NewHR[int64](ConfigForNF(48), randx.New(seed))
		for v := int64(0); v < int64(n%3000)+1; v++ {
			hr.Feed(v % 50)
		}
		s, err := hr.Finalize()
		if err != nil {
			return false
		}
		rebuilt := histogram.FromBag(s.Config.SizeModel, s.Hist.Expand())
		return rebuilt.Equal(s.Hist)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
