package core

import (
	"fmt"

	"samplewh/internal/histogram"
)

// Kind records the statistical nature of a finalized sample — the paper's
// h_i ("final phase of the algorithm when creating S_i"), which drives the
// merge procedures.
type Kind uint8

const (
	// Exhaustive means the sample is the complete frequency histogram of the
	// parent partition (the algorithm finished in phase 1).
	Exhaustive Kind = iota + 1
	// BernoulliKind means the sample is (effectively) a Bern(q) sample of
	// the parent partition (Algorithm HB finished in phase 2).
	BernoulliKind
	// ReservoirKind means the sample is a simple random sample without
	// replacement of the parent partition (phase 3 of HB, phase 2 of HR).
	ReservoirKind
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Exhaustive:
		return "exhaustive"
	case BernoulliKind:
		return "bernoulli"
	case ReservoirKind:
		return "reservoir"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Sample is a finalized, self-describing sample of one data-set partition
// (or of a union of partitions after merging). It is the unit that the
// sample warehouse stores, rolls in and out, and merges.
type Sample[V comparable] struct {
	// Kind is the statistical nature of Hist relative to the parent.
	Kind Kind
	// Hist holds the sampled values in compact (value, count) form.
	Hist *histogram.Histogram[V]
	// ParentSize is |D|: the number of data elements in the parent
	// partition(s) the sample was drawn from.
	ParentSize int64
	// Q is the Bernoulli sampling rate; meaningful only when Kind is
	// BernoulliKind (1 for exhaustive samples by convention).
	Q float64
	// Config carries the footprint bound and size model the sample was
	// collected under; merges reuse it.
	Config Config
}

// Size returns the number of data-element values in the sample.
func (s *Sample[V]) Size() int64 { return s.Hist.Size() }

// Footprint returns the byte footprint of the sample's compact form.
func (s *Sample[V]) Footprint() int64 { return s.Hist.Footprint() }

// Fraction returns the sampling fraction |S| / |D|.
func (s *Sample[V]) Fraction() float64 {
	if s.ParentSize == 0 {
		return 0
	}
	return float64(s.Size()) / float64(s.ParentSize)
}

// Clone returns a deep copy; merges consume their inputs, so callers that
// keep samples in a warehouse merge clones.
func (s *Sample[V]) Clone() *Sample[V] {
	c := *s
	c.Hist = s.Hist.Clone()
	return &c
}

// Validate checks the sample's internal consistency.
func (s *Sample[V]) Validate() error {
	if s.Hist == nil {
		return fmt.Errorf("core: sample has nil histogram")
	}
	switch s.Kind {
	case Exhaustive:
		if s.Hist.Size() != s.ParentSize {
			return fmt.Errorf("core: exhaustive sample size %d != parent size %d",
				s.Hist.Size(), s.ParentSize)
		}
	case BernoulliKind:
		if s.Q <= 0 || s.Q > 1 {
			return fmt.Errorf("core: bernoulli sample with rate q = %v outside (0,1]", s.Q)
		}
	case ReservoirKind:
		// No kind-specific invariant beyond the global size check below; a
		// simple random sample may legitimately be any size up to |D|.
	default:
		return fmt.Errorf("core: sample has invalid kind %v", s.Kind)
	}
	if s.Hist.Size() > s.ParentSize {
		return fmt.Errorf("core: sample size %d exceeds parent size %d",
			s.Hist.Size(), s.ParentSize)
	}
	return nil
}

// String summarizes the sample.
func (s *Sample[V]) String() string {
	return fmt.Sprintf("Sample{kind=%s size=%d parent=%d q=%.6g footprint=%dB}",
		s.Kind, s.Size(), s.ParentSize, s.Q, s.Footprint())
}
