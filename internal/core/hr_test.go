package core

import (
	"math"
	"testing"

	"samplewh/internal/randx"
)

func TestHRExhaustiveWhenSmall(t *testing.T) {
	r := randx.New(1)
	hr := NewHR[int64](smallCfg(64), r)
	for v := int64(0); v < 30; v++ {
		hr.FeedN(v, 2)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive || s.Size() != 60 {
		t.Fatalf("kind=%v size=%d", s.Kind, s.Size())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHRReservoirSizeExactlyNF(t *testing.T) {
	r := randx.New(2)
	cfg := smallCfg(512)
	hr := NewHR[int64](cfg, r)
	const n = 1 << 15
	for v := int64(0); v < n; v++ {
		hr.Feed(v)
	}
	if hr.Phase() != PhaseReservoir {
		t.Fatalf("phase = %v", hr.Phase())
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != ReservoirKind {
		t.Fatalf("kind = %v", s.Kind)
	}
	if s.Size() != 512 {
		t.Fatalf("HR sample size = %d, want exactly nF = 512 (the paper's key stability property)", s.Size())
	}
	if s.ParentSize != n {
		t.Fatalf("parent = %d", s.ParentSize)
	}
}

func TestHRNoAdvanceKnowledgeOfN(t *testing.T) {
	// HR must produce a full-size sample no matter how much data arrives —
	// unlike HB, whose q depends on the declared N.
	r := randx.New(3)
	for _, n := range []int64{1 << 12, 1 << 14, 1 << 16} {
		hr := NewHR[int64](smallCfg(256), r.Split())
		for v := int64(0); v < n; v++ {
			hr.Feed(v)
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() != 256 {
			t.Fatalf("n=%d: size %d != 256", n, s.Size())
		}
	}
}

func TestHRFootprintBound(t *testing.T) {
	r := randx.New(4)
	cfg := smallCfg(128)
	hr := NewHR[int64](cfg, r)
	for i := 0; i < 1<<13; i++ {
		hr.Feed(int64(i % 1500))
		if fp := hr.CurrentFootprint(); fp > cfg.FootprintBytes {
			t.Fatalf("footprint %d exceeds F=%d at element %d", fp, cfg.FootprintBytes, i+1)
		}
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() > cfg.FootprintBytes {
		t.Fatalf("final footprint %d exceeds bound", s.Footprint())
	}
}

func TestHRLazyPurgeAtFinalize(t *testing.T) {
	// Arrange for the phase switch to happen on the very last element: the
	// exact histogram exceeds nF elements but no reservoir insertion ever
	// fires, so Finalize must apply the lazy purge.
	r := randx.New(5)
	cfg := smallCfg(16) // F = 128 bytes
	hr := NewHR[int64](cfg, r)
	// 16 distinct singletons fill F = 128 bytes exactly; the 17th value
	// would exceed the bound and triggers the phase switch before its
	// insert.
	for v := int64(0); v < 17; v++ {
		hr.Feed(v)
	}
	if hr.Phase() != PhaseReservoir {
		t.Fatalf("phase = %v, want reservoir after hitting F", hr.Phase())
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() > 16 {
		t.Fatalf("lazy purge missing: size %d", s.Size())
	}
	if s.Kind != ReservoirKind {
		t.Fatalf("kind = %v", s.Kind)
	}
}

func TestHRPerElementInclusionUniform(t *testing.T) {
	r := randx.New(6)
	const n = 512
	const trials = 4000
	cfg := smallCfg(32)
	counts := make([]int64, n)
	for trial := 0; trial < trials; trial++ {
		hr := NewHR[int64](cfg, r.Split())
		for v := int64(0); v < n; v++ {
			hr.Feed(v)
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() != 32 {
			t.Fatalf("size = %d", s.Size())
		}
		s.Hist.Each(func(v int64, c int64) { counts[v]++ })
	}
	want := float64(trials) * 32 / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestHRSubsetUniformityGivenSize(t *testing.T) {
	// All C(6,2) subsets equally likely when sampling 2 of 6 distinct
	// values.
	r := randx.New(7)
	const n = 6
	const trials = 60000
	cfg := smallCfg(2)
	counts := map[uint8]int64{}
	for trial := 0; trial < trials; trial++ {
		hr := NewHR[int64](cfg, r.Split())
		for v := int64(0); v < n; v++ {
			hr.Feed(v)
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if s.Size() != 2 {
			t.Fatalf("size = %d, want 2", s.Size())
		}
		var mask uint8
		s.Hist.Each(func(v int64, c int64) { mask |= 1 << uint(v) })
		counts[mask]++
	}
	if len(counts) != 15 {
		t.Fatalf("observed %d subsets, want 15", len(counts))
	}
	want := float64(trials) / 15
	for mask, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("subset %06b: %d, want ~%.0f", mask, c, want)
		}
	}
}

func TestHRDuplicateHeavyStream(t *testing.T) {
	// Duplicates exercise the run shortcuts; size must still be exact.
	r := randx.New(8)
	cfg := smallCfg(64)
	hr := NewHR[int64](cfg, r)
	for v := int64(0); v < 200; v++ {
		hr.FeedN(v, 100)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 64 {
		t.Fatalf("size = %d", s.Size())
	}
	if s.ParentSize != 20000 {
		t.Fatalf("parent = %d", s.ParentSize)
	}
}

func TestHRPanics(t *testing.T) {
	r := randx.New(9)
	hr := NewHR[int64](smallCfg(16), r)
	hr.Feed(1)
	if _, err := hr.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := hr.Finalize(); err == nil {
		t.Fatal("second Finalize did not error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Feed after Finalize did not panic")
			}
		}()
		hr.Feed(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("FeedN(v,0) did not panic")
			}
		}()
		NewHR[int64](smallCfg(16), r).FeedN(1, 0)
	}()
}

func TestHRSampleSizeStabilityVsHB(t *testing.T) {
	// Figure 15/16 in miniature: over repeated runs, HR sample sizes have
	// (much) lower variance than HB sample sizes.
	const trials = 300
	const n = 1 << 13
	cfg := smallCfg(256)
	var hbSizes, hrSizes []float64
	r := randx.New(10)
	for trial := 0; trial < trials; trial++ {
		hb := NewHB[int64](cfg, n, r.Split())
		hr := NewHR[int64](cfg, r.Split())
		for v := int64(0); v < n; v++ {
			hb.Feed(v)
			hr.Feed(v)
		}
		sb, _ := hb.Finalize()
		sr, _ := hr.Finalize()
		hbSizes = append(hbSizes, float64(sb.Size()))
		hrSizes = append(hrSizes, float64(sr.Size()))
	}
	varOf := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		return v / float64(len(xs)-1)
	}
	hbVar, hrVar := varOf(hbSizes), varOf(hrSizes)
	if hrVar != 0 {
		t.Logf("HB size variance %v, HR %v", hbVar, hrVar)
	}
	if hrVar > hbVar {
		t.Fatalf("HR size variance %v exceeds HB %v; expected HR to be more stable", hrVar, hbVar)
	}
}
