package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// SystematicSampler implements 1-in-k systematic sampling with a random
// start: element i (1-based) is included iff i ≡ r (mod k) for a start r
// drawn uniformly from {1..k}. The paper lists systematic sampling among the
// "other useful sampling designs" targeted as future work (§6); it is
// provided here as an extension.
//
// Systematic samples have exactly ⌈(N−r+1)/k⌉ elements and each element has
// inclusion probability 1/k, but the scheme is NOT uniform over subsets
// (inclusions are perfectly correlated within a residue class), so
// systematic samples must not be fed to the uniform merge procedures.
// Their advantage is implicit stratification over arrival order and an
// exactly predictable sample size; Finalize reports the sample as
// BernoulliKind with Q = 1/k for estimator compatibility (the plug-in
// estimators remain unbiased), which is the standard practice.
type SystematicSampler[V comparable] struct {
	cfg       Config
	k         int64
	next      int64 // 1-based index of the next element to include
	hist      *histogram.Histogram[V]
	seen      int64
	finalized bool
}

// NewSystematic returns a 1-in-k systematic sampler with a random start
// drawn from src. It panics if k < 1.
func NewSystematic[V comparable](cfg Config, k int64, src randx.Source) *SystematicSampler[V] {
	cfg = cfg.normalized()
	if k < 1 {
		panic(fmt.Sprintf("core: NewSystematic with k = %d < 1", k))
	}
	return &SystematicSampler[V]{
		cfg:  cfg,
		k:    k,
		next: randx.UniformInt(src, k),
		hist: histogram.New[V](cfg.SizeModel),
	}
}

// K returns the sampling interval.
func (s *SystematicSampler[V]) K() int64 { return s.k }

// Seen returns the number of elements processed.
func (s *SystematicSampler[V]) Seen() int64 { return s.seen }

// SampleSize returns the current number of sampled elements.
func (s *SystematicSampler[V]) SampleSize() int64 { return s.hist.Size() }

// Feed processes one arriving element.
func (s *SystematicSampler[V]) Feed(v V) { s.FeedN(v, 1) }

// FeedN processes a run of n equal values; the number of inclusions in the
// run is computed arithmetically.
func (s *SystematicSampler[V]) FeedN(v V, n int64) {
	if s.finalized {
		panic("core: SystematicSampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	end := s.seen + n
	if s.next <= end {
		// Inclusions at s.next, s.next+k, ... up to end.
		m := (end-s.next)/s.k + 1
		s.hist.Insert(v, m)
		s.next += m * s.k
	}
	s.seen = end
}

// Finalize returns the systematic sample (reported as a rate-1/k Bernoulli
// sample for estimator compatibility; see the type comment for caveats).
func (s *SystematicSampler[V]) Finalize() (*Sample[V], error) {
	if s.finalized {
		return nil, fmt.Errorf("core: SystematicSampler already finalized")
	}
	s.finalized = true
	kind := BernoulliKind
	q := 1 / float64(s.k)
	if s.k == 1 {
		kind = Exhaustive
		q = 1
	}
	return &Sample[V]{
		Kind:       kind,
		Hist:       s.hist,
		ParentSize: s.seen,
		Q:          q,
		Config:     s.cfg,
	}, nil
}

var _ Sampler[int64] = (*SystematicSampler[int64])(nil)
