package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// Checkpointing lets a long-running partition sampler survive process
// restarts: Checkpoint captures the sampler's complete state — including the
// random-generator state, so the resumed sampler produces exactly the
// sequence the original would have — and the matching Resume function
// rebuilds it. The state structs have only exported fields and serialize
// cleanly with encoding/gob or encoding/json.
//
// Checkpointing requires the sampler's randomness source to be a *randx.RNG
// (the default for every constructor in this repository).

// HBState is the serializable state of an in-progress Algorithm HB sampler.
type HBState[V comparable] struct {
	Config    Config
	ExpectedN int64
	Q         float64
	Phase     Phase
	Entries   []histogram.Entry[V] // compact form (nil once expanded)
	Bag       []V                  // expanded form
	Expanded  bool
	Seen      int64
	Next      int64
	RK        int64
	RNG       randx.State
	Skipper   *randx.SkipperState // non-nil in the reservoir phase
}

// Checkpoint captures the sampler's state. It errors if the sampler was
// already finalized or draws randomness from something other than a
// *randx.RNG.
func (s *HB[V]) Checkpoint() (HBState[V], error) {
	var st HBState[V]
	if s.finalized {
		return st, fmt.Errorf("core: Checkpoint after Finalize")
	}
	rng, ok := s.src.(*randx.RNG)
	if !ok {
		return st, fmt.Errorf("core: Checkpoint requires a *randx.RNG source, have %T", s.src)
	}
	st = HBState[V]{
		Config:    s.cfg,
		ExpectedN: s.expectedN,
		Q:         s.q,
		Phase:     s.phase,
		Expanded:  s.expanded,
		Seen:      s.seen,
		Next:      s.next,
		RK:        s.rk,
		RNG:       rng.State(),
	}
	if s.expanded {
		st.Bag = append([]V(nil), s.bag...)
	} else {
		st.Entries = s.hist.Entries()
	}
	if s.sk != nil {
		sks := s.sk.State()
		st.Skipper = &sks
	}
	return st, nil
}

// ResumeHBFromState reconstructs an Algorithm HB sampler from a checkpoint.
func ResumeHBFromState[V comparable](st HBState[V]) (*HB[V], error) {
	if err := st.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: resume HB: %w", err)
	}
	switch st.Phase {
	case PhaseExact, PhaseBernoulli, PhaseReservoir:
	default:
		return nil, fmt.Errorf("core: resume HB: invalid phase %v", st.Phase)
	}
	rng := randx.FromState(st.RNG)
	hb := &HB[V]{
		cfg:       st.Config.normalized(),
		nf:        st.Config.NF(),
		expectedN: st.ExpectedN,
		q:         st.Q,
		src:       rng,
		phase:     st.Phase,
		expanded:  st.Expanded,
		seen:      st.Seen,
		next:      st.Next,
		rk:        st.RK,
	}
	if st.Expanded {
		hb.bag = append([]V(nil), st.Bag...)
	} else {
		hb.hist = histogram.New[V](hb.cfg.SizeModel)
		for _, e := range st.Entries {
			hb.hist.Insert(e.Value, e.Count)
		}
	}
	if st.Skipper != nil {
		hb.sk = randx.SkipperFromState(*st.Skipper, rng)
	} else if st.Phase == PhaseReservoir {
		return nil, fmt.Errorf("core: resume HB: reservoir phase without skipper state")
	}
	return hb, nil
}

// HRState is the serializable state of an in-progress Algorithm HR sampler.
type HRState[V comparable] struct {
	Config   Config
	Phase    Phase
	Entries  []histogram.Entry[V]
	Bag      []V
	Purged   bool
	Expanded bool
	Seen     int64
	Next     int64
	RK       int64
	RNG      randx.State
	Skipper  *randx.SkipperState
}

// Checkpoint captures the sampler's state (see HB.Checkpoint).
func (s *HR[V]) Checkpoint() (HRState[V], error) {
	var st HRState[V]
	if s.finalized {
		return st, fmt.Errorf("core: Checkpoint after Finalize")
	}
	rng, ok := s.src.(*randx.RNG)
	if !ok {
		return st, fmt.Errorf("core: Checkpoint requires a *randx.RNG source, have %T", s.src)
	}
	st = HRState[V]{
		Config:   s.cfg,
		Phase:    s.phase,
		Purged:   s.purged,
		Expanded: s.expanded,
		Seen:     s.seen,
		Next:     s.next,
		RK:       s.rk,
		RNG:      rng.State(),
	}
	if s.expanded {
		st.Bag = append([]V(nil), s.bag...)
	} else {
		st.Entries = s.hist.Entries()
	}
	if s.sk != nil {
		sks := s.sk.State()
		st.Skipper = &sks
	}
	return st, nil
}

// ResumeHRFromState reconstructs an Algorithm HR sampler from a checkpoint.
func ResumeHRFromState[V comparable](st HRState[V]) (*HR[V], error) {
	if err := st.Config.Validate(); err != nil {
		return nil, fmt.Errorf("core: resume HR: %w", err)
	}
	switch st.Phase {
	case PhaseExact, PhaseReservoir:
	default:
		return nil, fmt.Errorf("core: resume HR: invalid phase %v", st.Phase)
	}
	rng := randx.FromState(st.RNG)
	hr := &HR[V]{
		cfg:      st.Config.normalized(),
		nf:       st.Config.NF(),
		src:      rng,
		phase:    st.Phase,
		purged:   st.Purged,
		expanded: st.Expanded,
		seen:     st.Seen,
		next:     st.Next,
		rk:       st.RK,
	}
	if st.Expanded {
		hr.bag = append([]V(nil), st.Bag...)
	} else {
		hr.hist = histogram.New[V](hr.cfg.SizeModel)
		for _, e := range st.Entries {
			hr.hist.Insert(e.Value, e.Count)
		}
	}
	if st.Skipper != nil {
		hr.sk = randx.SkipperFromState(*st.Skipper, rng)
	} else if st.Phase == PhaseReservoir {
		return nil, fmt.Errorf("core: resume HR: reservoir phase without skipper state")
	}
	return hr, nil
}
