package core

import (
	"fmt"
	"testing"

	"samplewh/internal/randx"
)

// sampleIdentical is the strict byte-level notion of equality the parallel
// merge tree promises: every field that the storage codec serializes must
// match, not just the statistical metadata.
func sampleIdentical(a, b *Sample[int64]) error {
	if a.Kind != b.Kind {
		return fmt.Errorf("kind %v vs %v", a.Kind, b.Kind)
	}
	if a.ParentSize != b.ParentSize {
		return fmt.Errorf("parent size %d vs %d", a.ParentSize, b.ParentSize)
	}
	if a.Q != b.Q {
		return fmt.Errorf("q %v vs %v", a.Q, b.Q)
	}
	if a.Config != b.Config {
		return fmt.Errorf("config %+v vs %+v", a.Config, b.Config)
	}
	if !a.Hist.Equal(b.Hist) {
		return fmt.Errorf("histograms differ")
	}
	return nil
}

// TestMergeTreeParallelByteIdentical is the correctness linchpin of the
// parallel executor: for the same seed, MergeTreeParallel must produce a
// sample byte-identical to sequential MergeTree at every partition count
// (including odd counts that exercise the carry) and every parallelism.
func TestMergeTreeParallelByteIdentical(t *testing.T) {
	cfg := smallCfg(64)
	for _, parts := range []int{1, 2, 3, 5, 8, 13, 16, 64} {
		for _, mergeName := range []string{"HR", "HB"} {
			t.Run(fmt.Sprintf("parts=%d/%s", parts, mergeName), func(t *testing.T) {
				merge := HRMerge[int64]
				collect := collectHR
				if mergeName == "HB" {
					merge = HBMerge[int64]
					collect = collectHB
				}
				build := func() []*Sample[int64] {
					r := randx.New(123)
					var ss []*Sample[int64]
					for p := int64(0); p < int64(parts); p++ {
						ss = append(ss, collect(t, cfg, p*500, (p+1)*500, r.Split()))
					}
					return ss
				}
				serial, err := MergeTree(build(), merge, randx.New(777))
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 2, 4, 8, 0} {
					got, err := MergeTreeParallel(build(), merge, randx.New(777), par)
					if err != nil {
						t.Fatal(err)
					}
					if err := sampleIdentical(serial, got); err != nil {
						t.Fatalf("parallelism %d diverged from serial: %v", par, err)
					}
				}
			})
		}
	}
}

// TestMergeTreeForeignSourceSequential documents the fallback: a Source that
// is not a *randx.RNG cannot be split, so the tree must run deterministically
// on the shared stream — two identical runs agree.
func TestMergeTreeForeignSourceSequential(t *testing.T) {
	cfg := smallCfg(32)
	build := func() []*Sample[int64] {
		r := randx.New(5)
		var ss []*Sample[int64]
		for p := int64(0); p < 6; p++ {
			ss = append(ss, collectHR(t, cfg, p*300, (p+1)*300, r.Split()))
		}
		return ss
	}
	run := func() *Sample[int64] {
		m, err := MergeTreeParallel(build(), HRMerge, &countingSource{rng: randx.New(9)}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if err := sampleIdentical(run(), run()); err != nil {
		t.Fatalf("foreign-source tree not deterministic: %v", err)
	}
}

// countingSource wraps an RNG without being one, forcing the non-splittable
// path through the merge tree.
type countingSource struct {
	rng   *randx.RNG
	calls int64
}

func (c *countingSource) Uint64() uint64 {
	c.calls++
	return c.rng.Uint64()
}
