package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

func TestQApproxBounds(t *testing.T) {
	for _, c := range []struct {
		n, nf int64
		p     float64
	}{
		{100000, 100, 0.001},
		{100000, 1000, 0.001},
		{100000, 10000, 0.001},
		{1 << 25, 8192, 0.001},
		{32768, 8192, 0.00001},
	} {
		q := QApprox(c.n, c.p, c.nf)
		if q <= 0 || q >= 1 {
			t.Errorf("QApprox(%d,%v,%d) = %v outside (0,1)", c.n, c.p, c.nf, q)
		}
		// The whole point of q: P{Bin(N,q) > nF} should be ≈ p (and in any
		// case well below 10·p given the approximation error).
		tail := randx.BinomialTail(c.n, c.nf, q)
		if tail > 3*c.p {
			t.Errorf("QApprox(%d,%v,%d): exceedance %v way above target %v",
				c.n, c.p, c.nf, tail, c.p)
		}
	}
}

func TestQApproxWholePopulationFits(t *testing.T) {
	if got := QApprox(100, 0.001, 100); got != 1 {
		t.Errorf("QApprox with nF = N returned %v, want 1", got)
	}
	if got := QApprox(100, 0.001, 200); got != 1 {
		t.Errorf("QApprox with nF > N returned %v, want 1", got)
	}
}

func TestQApproxMonotoneInN(t *testing.T) {
	prev := 1.1
	for _, n := range []int64{20000, 40000, 80000, 160000, 320000} {
		q := QApprox(n, 0.001, 8192)
		if q >= prev {
			t.Fatalf("q not decreasing in N: q(%d) = %v >= %v", n, q, prev)
		}
		prev = q
	}
}

func TestQApproxPanics(t *testing.T) {
	for _, f := range []func(){
		func() { QApprox(0, 0.001, 10) },
		func() { QApprox(10, 0.001, 0) },
		func() { QApprox(10, 0, 10) },
		func() { QApprox(10, 0.7, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("QApprox misuse did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQExactHitsTarget(t *testing.T) {
	for _, c := range []struct {
		n, nf int64
		p     float64
	}{
		{100000, 1000, 0.001},
		{100000, 100, 0.0001},
		{32768, 8192, 0.001},
	} {
		q := QExact(c.n, c.p, c.nf, 1e-13)
		tail := randx.BinomialTail(c.n, c.nf, q)
		if math.Abs(tail-c.p)/c.p > 0.01 {
			t.Errorf("QExact(%d,%v,%d): tail %v, want %v", c.n, c.p, c.nf, tail, c.p)
		}
	}
}

// TestFigure5MaxRelativeError reproduces the paper's Figure 5 claim: for
// N = 10^5, nF ∈ {10², 10³, 10⁴} and p ∈ [10⁻⁵, 5·10⁻³], the relative error
// of approximation (1) never exceeds 3% (the paper reports max 2.765%).
func TestFigure5MaxRelativeError(t *testing.T) {
	const n = 100000
	ps := []float64{0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005}
	maxErr := 0.0
	for _, nf := range []int64{100, 1000, 10000} {
		for _, p := range ps {
			re := QApproxRelError(n, p, nf)
			if re > maxErr {
				maxErr = re
			}
			if re > 0.03 {
				t.Errorf("relative error %v at nF=%d p=%v exceeds the paper's 3%% bound", re, nf, p)
			}
		}
	}
	t.Logf("max relative error over Figure 5 grid: %.4f%% (paper: 2.765%%)", maxErr*100)
}

func TestQApproxRelErrorSmallAtLargeNF(t *testing.T) {
	// The paper's figure shows error shrinking with nF; at nF = 10^4 it is
	// well under 0.1%.
	if re := QApproxRelError(100000, 0.001, 10000); re > 0.001 {
		t.Errorf("relative error at nF=10^4: %v, want < 0.1%%", re)
	}
}

func TestConfigNF(t *testing.T) {
	cfg := ConfigForNF(8192)
	if cfg.NF() != 8192 {
		t.Fatalf("ConfigForNF(8192).NF() = %d", cfg.NF())
	}
	if cfg.FootprintBytes != 65536 {
		t.Fatalf("footprint = %d, want 65536", cfg.FootprintBytes)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	m := histogram.DefaultSizeModel
	bad := []Config{
		{FootprintBytes: 0, SizeModel: m, ExceedProb: 0.001},
		{FootprintBytes: -5, SizeModel: m, ExceedProb: 0.001},
		{FootprintBytes: 100, SizeModel: m, ExceedProb: 0.9},
		{FootprintBytes: 4, SizeModel: m, ExceedProb: 0.001}, // NF = 0
		{FootprintBytes: 100, SizeModel: histogram.SizeModel{ValueBytes: -8, CountBytes: 4}, ExceedProb: 0.001},
		{FootprintBytes: 100, SizeModel: histogram.SizeModel{ValueBytes: 8, CountBytes: -4}, ExceedProb: 0.001},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
}
