package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// TestHBMergeExhaustivePlusReservoir exercises Figure 6 line 1 with a
// reservoir-kind partner: the exhaustive sample's values are re-fed into a
// resumed reservoir state.
func TestHBMergeExhaustivePlusReservoir(t *testing.T) {
	r := randx.New(20)
	cfg := smallCfg(64)
	const trials = 3000
	counts := make([]int64, 2048+50)
	for trial := 0; trial < trials; trial++ {
		// Force a reservoir sample: HB with badly under-declared N.
		hb := NewHB[int64](cfg, 64, r.Split())
		for v := int64(0); v < 2048; v++ {
			hb.Feed(v)
		}
		res, err := hb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != ReservoirKind {
			t.Fatalf("setup kind %v", res.Kind)
		}
		ex := collectHB(t, cfg, 2048, 2048+50, r.Split())
		if ex.Kind != Exhaustive {
			t.Fatalf("setup kind %v", ex.Kind)
		}
		m, err := HBMerge(res, ex, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != ReservoirKind {
			t.Fatalf("merged kind %v", m.Kind)
		}
		if m.ParentSize != 2098 {
			t.Fatalf("parent %d", m.ParentSize)
		}
		if m.Size() != 64 {
			t.Fatalf("size %d, want the reservoir capacity preserved", m.Size())
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	want := float64(trials) * 64 / 2098
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 7*math.Sqrt(want) {
			t.Errorf("element %d: %d inclusions, want ~%.1f", v, c, want)
		}
	}
}

// TestHBMergeFullBernoulliReroutesToSRS covers the guard for a Bernoulli
// sample that already holds >= nF values (possible after joins of
// duplicate-heavy samples): HBMerge must treat it as a conditional SRS.
func TestHBMergeFullBernoulliReroutesToSRS(t *testing.T) {
	r := randx.New(21)
	cfg := smallCfg(8) // nF = 8
	// Hand-construct a Bernoulli sample with 10 >= nF elements but compact
	// footprint within F (duplicates).
	h := histogram.New[int64](cfg.SizeModel)
	h.Insert(1, 5)
	h.Insert(2, 5)
	full := &Sample[int64]{
		Kind:       BernoulliKind,
		Hist:       h,
		ParentSize: 20,
		Q:          0.5,
		Config:     cfg,
	}
	ex := collectHR(t, cfg, 100, 104, r)
	if ex.Kind != Exhaustive {
		t.Fatalf("setup kind %v", ex.Kind)
	}
	m, err := HBMerge(full, ex, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ReservoirKind {
		t.Fatalf("kind %v, want reservoir via SRS rerouting", m.Kind)
	}
	if m.ParentSize != 24 {
		t.Fatalf("parent %d", m.ParentSize)
	}
	if m.Size() > 10 {
		t.Fatalf("size %d", m.Size())
	}
}

// TestMergeManyMixedKinds merges a mixture of exhaustive, Bernoulli and
// reservoir samples through the generic dispatcher and validates the result.
func TestMergeManyMixedKinds(t *testing.T) {
	r := randx.New(22)
	cfg := smallCfg(128)
	samples := []*Sample[int64]{
		collectHR(t, cfg, 0, 50, r.Split()),        // exhaustive
		collectHB(t, cfg, 1000, 9000, r.Split()),   // bernoulli
		collectHR(t, cfg, 10000, 30000, r.Split()), // reservoir
		collectHR(t, cfg, 30000, 30040, r.Split()), // exhaustive
	}
	m, err := MergeSerial(samples, Merge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != 50+8000+20000+40 {
		t.Fatalf("parent %d", m.ParentSize)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() > cfg.FootprintBytes {
		t.Fatalf("footprint %d", m.Footprint())
	}
}

// TestHRMergeEmptySide covers the degenerate k = 0 path.
func TestHRMergeEmptySide(t *testing.T) {
	r := randx.New(23)
	cfg := smallCfg(16)
	empty := &Sample[int64]{
		Kind:       BernoulliKind,
		Hist:       histogram.New[int64](cfg.SizeModel),
		ParentSize: 100,
		Q:          0.001,
		Config:     cfg,
	}
	other := collectHR(t, cfg, 0, 5000, r)
	m, err := HRMerge(empty, other, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 {
		t.Fatalf("size %d, want 0", m.Size())
	}
	if m.ParentSize != 5100 {
		t.Fatalf("parent %d", m.ParentSize)
	}
}

// TestMergeDuplicateHeavyPartitions drives the compact-pair arithmetic
// through merges: partitions whose histograms are a few high-count pairs.
func TestMergeDuplicateHeavyPartitions(t *testing.T) {
	r := randx.New(24)
	cfg := smallCfg(64)
	mk := func(val int64, n int64, src randx.Source) *Sample[int64] {
		hr := NewHR[int64](cfg, src)
		hr.FeedN(val, n)
		hr.FeedN(val+1, n)
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk(10, 50000, r.Split())
	s2 := mk(20, 30000, r.Split())
	m, err := HRMerge(s1, s2, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != 160000 {
		t.Fatalf("parent %d", m.ParentSize)
	}
	if m.Kind != Exhaustive && m.Size() == 0 {
		t.Fatalf("degenerate merge: %v", m)
	}
	// Only the four values can appear.
	m.Hist.Each(func(v int64, c int64) {
		if v != 10 && v != 11 && v != 20 && v != 21 {
			t.Fatalf("alien value %d", v)
		}
	})
}

// TestResumeHBSeedsElementCounter checks that merging via re-feeding
// continues the element index from the partner's parent size (a silent
// correctness requirement for the reservoir skip distribution).
func TestResumeHBSeedsElementCounter(t *testing.T) {
	r := randx.New(25)
	cfg := smallCfg(32)
	// Reservoir partner of a large partition.
	hb := NewHB[int64](cfg, 32, r.Split())
	for v := int64(0); v < 4096; v++ {
		hb.Feed(v)
	}
	res, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ReservoirKind {
		t.Fatalf("setup kind %v", res.Kind)
	}
	resumed := resumeHB(res, 5000, r.Split())
	if resumed.Seen() != 4096 {
		t.Fatalf("resumed counter %d, want 4096", resumed.Seen())
	}
	if resumed.Phase() != PhaseReservoir {
		t.Fatalf("resumed phase %v", resumed.Phase())
	}
}

// TestMergeTreeParallelMatchesSerialSemantics merges the same partition set
// with the serial and parallel trees and checks both produce valid uniform
// samples with identical metadata; a race-detector run covers the
// synchronization.
func TestMergeTreeParallelMatchesSerialSemantics(t *testing.T) {
	r := randx.New(30)
	cfg := smallCfg(64)
	build := func() []*Sample[int64] {
		var ss []*Sample[int64]
		for p := int64(0); p < 13; p++ { // odd count exercises the carry
			ss = append(ss, collectHR(t, cfg, p*2000, (p+1)*2000, r.Split()))
		}
		return ss
	}
	serial, err := MergeTree(build(), HRMerge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	par, err := MergeTreeParallel(build(), HRMerge, r.Split(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.ParentSize != serial.ParentSize || par.Size() != serial.Size() {
		t.Fatalf("parallel %v vs serial %v", par, serial)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeTreeParallelDeterministic verifies scheduling independence: the
// same seed yields the same merged sample regardless of parallelism.
func TestMergeTreeParallelDeterministic(t *testing.T) {
	cfg := smallCfg(32)
	build := func(seed uint64) []*Sample[int64] {
		r := randx.New(seed)
		var ss []*Sample[int64]
		for p := int64(0); p < 8; p++ {
			ss = append(ss, collectHR(t, cfg, p*1000, (p+1)*1000, r.Split()))
		}
		return ss
	}
	run := func(parallelism int) *Sample[int64] {
		m, err := MergeTreeParallel(build(77), HRMerge, randx.New(99), parallelism)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := run(1)
	b := run(8)
	if !a.Hist.Equal(b.Hist) {
		t.Fatal("parallelism changed the merged sample for a fixed seed")
	}
}

// TestMergeTreeParallelUniformInclusion is the statistical acceptance test
// for the parallel merge path.
func TestMergeTreeParallelUniformInclusion(t *testing.T) {
	outer := randx.New(31)
	cfg := smallCfg(32)
	const n = 1600
	const trials = 1500
	counts := make([]int64, n)
	for trial := 0; trial < trials; trial++ {
		r := outer.Split()
		var ss []*Sample[int64]
		for p := int64(0); p < 8; p++ {
			ss = append(ss, collectHR(t, cfg, p*200, (p+1)*200, r.Split()))
		}
		m, err := MergeTreeParallel(ss, HRMerge, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	want := float64(trials) * 32 / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d: %d inclusions, want ~%.1f", v, c, want)
		}
	}
}

// TestMergeTreeParallelEmpty covers the error path.
func TestMergeTreeParallelEmpty(t *testing.T) {
	if _, err := MergeTreeParallel[int64](nil, HRMerge, randx.New(1), 0); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestMergeToSizeUniform verifies the k < min generalization of Theorem 1:
// every element of the union appears with probability k/(|D1|+|D2|).
func TestMergeToSizeUniform(t *testing.T) {
	r := randx.New(40)
	cfg := smallCfg(32)
	const n1, n2 = 800, 1200
	const k = 10
	const trials = 6000
	counts := make([]int64, n1+n2)
	for trial := 0; trial < trials; trial++ {
		s1 := collectHR(t, cfg, 0, n1, r.Split())
		s2 := collectHR(t, cfg, n1, n1+n2, r.Split())
		m, err := MergeToSize(s1, s2, k, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Size() != k {
			t.Fatalf("size %d, want %d", m.Size(), k)
		}
		if m.ParentSize != n1+n2 {
			t.Fatalf("parent %d", m.ParentSize)
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	want := float64(trials) * k / (n1 + n2)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want)+1 {
			t.Errorf("element %d: %d inclusions, want ~%.1f", v, c, want)
		}
	}
}

// TestMergeToSizeValidation covers bounds and the exhaustive path.
func TestMergeToSizeValidation(t *testing.T) {
	r := randx.New(41)
	cfg := smallCfg(32)
	s1 := collectHR(t, cfg, 0, 5000, r.Split())
	s2 := collectHR(t, cfg, 5000, 10000, r.Split())
	if _, err := MergeToSize(s1.Clone(), s2.Clone(), 33, r.Split()); err == nil {
		t.Error("k > min accepted")
	}
	if _, err := MergeToSize(s1.Clone(), s2.Clone(), -1, r.Split()); err == nil {
		t.Error("negative k accepted")
	}
	// Exhaustive inputs: union cut to k.
	e1 := collectHR(t, cfg, 0, 20, r.Split())
	e2 := collectHR(t, cfg, 20, 40, r.Split())
	m, err := MergeToSize(e1, e2, 7, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 7 || m.Kind != ReservoirKind {
		t.Fatalf("exhaustive path: %v", m)
	}
	e3 := collectHR(t, cfg, 0, 5, r.Split())
	e4 := collectHR(t, cfg, 5, 10, r.Split())
	if _, err := MergeToSize(e3, e4, 11, r.Split()); err == nil {
		t.Error("k > union size accepted on exhaustive path")
	}
}
