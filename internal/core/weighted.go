package core

import (
	"container/heap"
	"fmt"
	"math"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// WeightedReservoir implements biased (weighted) sampling without
// replacement with an a priori bounded sample size k, using the
// Efraimidis–Spirakis A-Res scheme: each arriving element with weight w > 0
// draws a key u^(1/w) (u uniform) and the k largest keys are retained in a
// min-heap. The inclusion probabilities are proportional-ish to the weights
// (exactly: sequential weighted sampling without replacement).
//
// Biased sampling is the last of the paper's §6 future-work designs; like
// systematic samples, weighted samples are not uniform and must not be fed
// to the uniform merge procedures. Two WeightedReservoirs over disjoint
// partitions CAN be merged exactly, however, by merging their key-heaps —
// implemented in MergeWeighted — because the per-element keys are
// independent of the partitioning.
type WeightedReservoir[V comparable] struct {
	cfg       Config
	k         int64
	src       randx.Source
	h         weightedHeap[V]
	seen      int64
	totalW    float64
	finalized bool
}

// weightedItem is one retained element with its A-Res key.
type weightedItem[V comparable] struct {
	value  V
	weight float64
	key    float64
}

// weightedHeap is a min-heap on key, so the smallest retained key is
// evicted first.
type weightedHeap[V comparable] []weightedItem[V]

func (h weightedHeap[V]) Len() int           { return len(h) }
func (h weightedHeap[V]) Less(i, j int) bool { return h[i].key < h[j].key }
func (h weightedHeap[V]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *weightedHeap[V]) Push(x any)        { *h = append(*h, x.(weightedItem[V])) }
func (h *weightedHeap[V]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewWeightedReservoir returns a size-k weighted reservoir. It panics if
// k < 1.
func NewWeightedReservoir[V comparable](cfg Config, k int64, src randx.Source) *WeightedReservoir[V] {
	cfg = cfg.normalized()
	if k < 1 {
		panic(fmt.Sprintf("core: NewWeightedReservoir with k = %d < 1", k))
	}
	return &WeightedReservoir[V]{cfg: cfg, k: k, src: src}
}

// K returns the reservoir capacity.
func (w *WeightedReservoir[V]) K() int64 { return w.k }

// Seen returns the number of elements processed.
func (w *WeightedReservoir[V]) Seen() int64 { return w.seen }

// TotalWeight returns the sum of all weights fed so far.
func (w *WeightedReservoir[V]) TotalWeight() float64 { return w.totalW }

// SampleSize returns the current reservoir occupancy.
func (w *WeightedReservoir[V]) SampleSize() int64 { return int64(w.h.Len()) }

// Feed processes one element with the given weight. Elements with
// non-positive or NaN weight are counted but can never be sampled.
func (w *WeightedReservoir[V]) Feed(v V, weight float64) {
	if w.finalized {
		panic("core: WeightedReservoir fed after Finalize")
	}
	w.seen++
	if !(weight > 0) { // also rejects NaN
		return
	}
	w.totalW += weight
	// A-Res key: u^(1/w) for u ~ uniform(0,1).
	key := math.Pow(randx.Float64Open(w.src), 1/weight)
	if int64(w.h.Len()) < w.k {
		heap.Push(&w.h, weightedItem[V]{value: v, weight: weight, key: key})
		return
	}
	if key > w.h[0].key {
		w.h[0] = weightedItem[V]{value: v, weight: weight, key: key}
		heap.Fix(&w.h, 0)
	}
}

// Items returns the retained (value, weight) pairs in unspecified order.
func (w *WeightedReservoir[V]) Items() []WeightedValue[V] {
	out := make([]WeightedValue[V], 0, w.h.Len())
	for _, it := range w.h {
		out = append(out, WeightedValue[V]{Value: it.value, Weight: it.weight})
	}
	return out
}

// WeightedValue pairs a sampled value with its weight.
type WeightedValue[V comparable] struct {
	Value  V
	Weight float64
}

// Finalize returns the weighted sample as a compact histogram Sample of
// ReservoirKind. The statistical design (weighted, not uniform) is the
// caller's to remember; the histogram simply records the retained values.
func (w *WeightedReservoir[V]) Finalize() (*Sample[V], error) {
	if w.finalized {
		return nil, fmt.Errorf("core: WeightedReservoir already finalized")
	}
	w.finalized = true
	h := histogram.New[V](w.cfg.SizeModel)
	for _, it := range w.h {
		h.Insert(it.value, 1)
	}
	return &Sample[V]{
		Kind:       ReservoirKind,
		Hist:       h,
		ParentSize: w.seen,
		Config:     w.cfg,
	}, nil
}

// MergeWeighted merges two weighted reservoirs over disjoint partitions
// into one weighted reservoir of capacity min(k1, k2): the union of the two
// key-heaps, cut to the k largest keys. Because every element's key was
// drawn independently, the result is distributed exactly as if one
// reservoir had processed the concatenated stream. Inputs are consumed.
func MergeWeighted[V comparable](a, b *WeightedReservoir[V]) (*WeightedReservoir[V], error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: MergeWeighted with nil reservoir")
	}
	if a.finalized || b.finalized {
		return nil, fmt.Errorf("core: MergeWeighted with finalized reservoir")
	}
	k := a.k
	if b.k < k {
		k = b.k
	}
	out := &WeightedReservoir[V]{
		cfg:    a.cfg,
		k:      k,
		src:    a.src,
		seen:   a.seen + b.seen,
		totalW: a.totalW + b.totalW,
	}
	items := append(a.h, b.h...)
	heap.Init(&items)
	for int64(items.Len()) > k {
		heap.Pop(&items) // drop the smallest keys
	}
	out.h = items
	return out, nil
}
