package core

import (
	"testing"

	"samplewh/internal/obs"
	"samplewh/internal/randx"
)

// collectEvents filters a sink's retained events by type.
func collectEvents(sink *obs.MemorySink, typ string) []obs.Event {
	var out []obs.Event
	for _, e := range sink.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestHBPhaseTransitionEvents drives Algorithm HB through both of its
// boundary crossings and asserts exactly one PhaseTransition event is
// emitted per crossing: exhaustive→Bernoulli, then Bernoulli→reservoir.
func TestHBPhaseTransitionEvents(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewMemorySink(1024)
	reg.SetSink(sink)

	cfg := ConfigForNF(64)
	// expectedN well above n_F keeps q comfortably inside (0,1), so the
	// exact phase exits into Bernoulli, and enough further arrivals push the
	// Bernoulli sample over n_F into the reservoir fallback.
	hb := NewHB[int64](cfg, 4*64, randx.New(1))
	hb.Instrument(reg, "p0")

	v := int64(0)
	for hb.Phase() == PhaseExact {
		hb.Feed(v)
		v++
	}
	got := collectEvents(sink, obs.EvPhaseTransition)
	if len(got) != 1 {
		t.Fatalf("after exact exit: %d transition events, want exactly 1", len(got))
	}
	if got[0].Labels["from"] != "exact" || got[0].Labels["to"] != "bernoulli" {
		t.Fatalf("first transition %v, want exact→bernoulli", got[0].Labels)
	}
	if got[0].Component != "core.hb" || got[0].Partition != "p0" {
		t.Errorf("transition mislabelled: %+v", got[0])
	}

	for hb.Phase() == PhaseBernoulli {
		hb.Feed(v)
		v++
		if v > 1<<20 {
			t.Fatal("sampler never entered reservoir phase")
		}
	}
	got = collectEvents(sink, obs.EvPhaseTransition)
	if len(got) != 2 {
		t.Fatalf("after reservoir entry: %d transition events, want exactly 2", len(got))
	}
	if got[1].Labels["from"] != "bernoulli" || got[1].Labels["to"] != "reservoir" {
		t.Fatalf("second transition %v, want bernoulli→reservoir", got[1].Labels)
	}

	// Feeding on in reservoir phase must not produce further transitions.
	for i := 0; i < 10000; i++ {
		hb.Feed(v)
		v++
	}
	if n := len(collectEvents(sink, obs.EvPhaseTransition)); n != 2 {
		t.Errorf("steady reservoir phase emitted extra transitions: %d total", n)
	}
	if c := reg.Counter("core.hb.phase_transitions").Value(); c != 2 {
		t.Errorf("phase_transitions counter = %d, want 2", c)
	}
	// Mid-stream the batched items counter may trail Seen() by less than
	// one flush batch; Finalize flushes, after which it is exact.
	if items, seen := reg.Counter("core.hb.items").Value(), hb.Seen(); items > seen || seen-items >= 4096 {
		t.Errorf("mid-stream items counter %d outside (%d-4096, %d]", items, seen, seen)
	}
	if _, err := hb.Finalize(); err != nil {
		t.Fatal(err)
	}
	if items := reg.Counter("core.hb.items").Value(); items != hb.Seen() {
		t.Errorf("items counter after finalize %d != Seen() %d", items, hb.Seen())
	}
	if n := len(collectEvents(sink, obs.EvFinalize)); n != 1 {
		t.Errorf("finalize events = %d, want 1", n)
	}
}

// TestHBCountersReconcile finishes Algorithm HB in its Bernoulli phase and
// checks the accounting identity: final sample size = size left by the
// phase-1 purge + Bernoulli acceptances since.
func TestHBCountersReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewMemorySink(64)
	reg.SetSink(sink)

	const n = 4096
	cfg := ConfigForNF(512)
	hb := NewHB[int64](cfg, n, randx.New(7))
	hb.Instrument(reg, "")
	for v := int64(0); v < n; v++ {
		hb.Feed(v)
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != BernoulliKind {
		t.Fatalf("sample kind %v; this test needs a Bernoulli finish (tune n/nF)", s.Kind)
	}
	purges := collectEvents(sink, obs.EvPurge)
	if len(purges) != 1 {
		t.Fatalf("purge events = %d, want 1 (the phase-1 exit)", len(purges))
	}
	after := purges[0].Values["after"]
	accepts := reg.Counter("core.hb.accepts").Value()
	if got := s.Size(); got != after+accepts {
		t.Errorf("final size %d != purge-survivors %d + accepts %d", got, after, accepts)
	}
	dropped := reg.Counter("core.purge.dropped").Value()
	if want := purges[0].Values["before"] - after; dropped != want {
		t.Errorf("purge.dropped = %d, want %d", dropped, want)
	}
	if items := reg.Counter("core.hb.items").Value(); items != n || s.ParentSize != n {
		t.Errorf("items=%d parent=%d, want both %d", items, s.ParentSize, n)
	}
}

// TestHRTransitionAndReconcile checks Algorithm HR: exactly one
// exact→reservoir crossing, and the final sample size equals the lazy
// purge's survivor count (reservoir insertions replace, never grow).
func TestHRTransitionAndReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewMemorySink(64)
	reg.SetSink(sink)

	const n = 10000
	cfg := ConfigForNF(64)
	hr := NewHR[int64](cfg, randx.New(3))
	hr.Instrument(reg, "day-1")
	for v := int64(0); v < n; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	trans := collectEvents(sink, obs.EvPhaseTransition)
	if len(trans) != 1 {
		t.Fatalf("transition events = %d, want exactly 1", len(trans))
	}
	if trans[0].Labels["from"] != "exact" || trans[0].Labels["to"] != "reservoir" {
		t.Fatalf("transition %v, want exact→reservoir", trans[0].Labels)
	}
	if s.Kind != ReservoirKind || s.Size() != 64 {
		t.Fatalf("final sample kind=%v size=%d, want reservoir of 64", s.Kind, s.Size())
	}
	purges := collectEvents(sink, obs.EvPurge)
	if len(purges) != 1 {
		t.Fatalf("purge events = %d, want 1 (the lazy reservoir purge)", len(purges))
	}
	if purges[0].Values["after"] != s.Size() {
		t.Errorf("purge left %d values but final size is %d", purges[0].Values["after"], s.Size())
	}
	if items := reg.Counter("core.hr.items").Value(); items != n {
		t.Errorf("items counter = %d, want %d", items, n)
	}
	if ins := reg.Counter("core.hr.reservoir_inserts").Value(); ins <= 0 {
		t.Errorf("reservoir_inserts = %d, want > 0 over %d arrivals", ins, n)
	}
}

// TestHRExhaustiveNoEvents: a partition that never hits the bound crosses
// no boundary and purges nothing — the trace must be silent except for the
// finalize record.
func TestHRExhaustiveNoEvents(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewMemorySink(16)
	reg.SetSink(sink)
	hr := NewHR[int64](ConfigForNF(1024), randx.New(5))
	hr.Instrument(reg, "")
	for v := int64(0); v < 100; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive {
		t.Fatalf("kind = %v, want exhaustive", s.Kind)
	}
	if n := len(collectEvents(sink, obs.EvPhaseTransition)); n != 0 {
		t.Errorf("exhaustive run emitted %d transitions", n)
	}
	if n := len(collectEvents(sink, obs.EvPurge)); n != 0 {
		t.Errorf("exhaustive run emitted %d purges", n)
	}
	if n := len(collectEvents(sink, obs.EvFinalize)); n != 1 {
		t.Errorf("finalize events = %d, want 1", n)
	}
}

// TestSBCountersReconcile: for the fixed-rate Bernoulli baseline the accept
// counter IS the sample size.
func TestSBCountersReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	sb := NewSB[int64](ConfigForNF(1024), 0.25, randx.New(9))
	sb.Instrument(reg, "")
	const n = 5000
	for v := int64(0); v < n; v++ {
		sb.Feed(v)
	}
	s, err := sb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if acc := reg.Counter("core.sb.accepts").Value(); acc != s.Size() {
		t.Errorf("accepts %d != sample size %d", acc, s.Size())
	}
	if items := reg.Counter("core.sb.items").Value(); items != n {
		t.Errorf("items = %d, want %d", items, n)
	}
}

// TestUninstrumentedSamplersUnchanged guards the nil-safe no-op contract at
// the sampler level: an uninstrumented run must behave identically (same
// deterministic sample) with zero observability state.
func TestUninstrumentedSamplersUnchanged(t *testing.T) {
	cfg := ConfigForNF(64)
	run := func(reg *obs.Registry) *Sample[int64] {
		hr := NewHR[int64](cfg, randx.New(11))
		if reg != nil {
			hr.Instrument(reg, "x")
		}
		for v := int64(0); v < 3000; v++ {
			hr.Feed(v)
		}
		s, err := hr.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := run(nil)
	instr := run(obs.NewRegistry())
	if plain.Size() != instr.Size() || plain.Kind != instr.Kind || plain.ParentSize != instr.ParentSize {
		t.Errorf("instrumentation changed the sample: %+v vs %+v", plain, instr)
	}
	a := plain.Hist.Expand()
	b := instr.Hist.Expand()
	if len(a) != len(b) {
		t.Fatalf("bag sizes differ: %d vs %d", len(a), len(b))
	}
	am := map[int64]int{}
	for _, v := range a {
		am[v]++
	}
	for _, v := range b {
		am[v]--
	}
	for v, c := range am {
		if c != 0 {
			t.Fatalf("samples differ at value %d (delta %d)", v, c)
		}
	}
}
