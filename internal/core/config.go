package core

import (
	"fmt"

	"samplewh/internal/histogram"
)

// Config carries the footprint and statistical parameters shared by the
// bounded samplers and the merge procedures.
type Config struct {
	// FootprintBytes is F: the maximum allowable byte footprint of a sample
	// both during and after collection.
	FootprintBytes int64

	// SizeModel prices the compact representation (bytes per value, bytes
	// per counter). The zero value selects histogram.DefaultSizeModel.
	SizeModel histogram.SizeModel

	// ExceedProb is p: the maximum allowable probability that an HB sample
	// exceeds n_F values (paper equation (1)). Zero selects 0.001, the
	// paper's default.
	ExceedProb float64
}

// DefaultExceedProb is the paper's default target exceedance probability.
const DefaultExceedProb = 0.001

// normalized returns a copy with defaults filled in, validating bounds.
func (c Config) normalized() Config {
	if c.SizeModel == (histogram.SizeModel{}) {
		c.SizeModel = histogram.DefaultSizeModel
	}
	if c.ExceedProb == 0 {
		c.ExceedProb = DefaultExceedProb
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.FootprintBytes <= 0 {
		return fmt.Errorf("core: FootprintBytes = %d, want > 0", c.FootprintBytes)
	}
	if c.SizeModel.ValueBytes <= 0 {
		return fmt.Errorf("core: SizeModel.ValueBytes = %d, want > 0", c.SizeModel.ValueBytes)
	}
	if c.SizeModel.CountBytes < 0 {
		return fmt.Errorf("core: SizeModel.CountBytes = %d, want >= 0", c.SizeModel.CountBytes)
	}
	if c.ExceedProb < 0 || c.ExceedProb > 0.5 {
		return fmt.Errorf("core: ExceedProb = %v, want in (0, 0.5]", c.ExceedProb)
	}
	if c.NF() < 1 {
		return fmt.Errorf("core: footprint %dB holds %d values; need at least 1",
			c.FootprintBytes, c.NF())
	}
	return nil
}

// NF returns n_F, the number of data-element values corresponding to the
// maximum allowable footprint of F bytes.
func (c Config) NF() int64 {
	m := c.SizeModel
	if m == (histogram.SizeModel{}) {
		m = histogram.DefaultSizeModel
	}
	return m.MaxValues(c.FootprintBytes)
}

// ConfigForNF builds a Config whose footprint admits exactly nf values under
// the default size model — the convenient way to say "I want samples of (at
// most) this many elements", mirroring the paper's n_F = 8192 setup.
func ConfigForNF(nf int64) Config {
	return Config{
		FootprintBytes: nf * histogram.DefaultSizeModel.ValueBytes,
		SizeModel:      histogram.DefaultSizeModel,
		ExceedProb:     DefaultExceedProb,
	}
}
