package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// conciseCfg allows exactly one (value, count) pair: 12 bytes under the
// default model, matching the paper's §3.3 counterexample where "the
// concise-sampling data structure can hold at most one (value, count) pair".
func conciseCfg() Config {
	return Config{
		FootprintBytes: 12,
		SizeModel:      histogram.DefaultSizeModel,
		ExceedProb:     DefaultExceedProb,
	}
}

// TestConciseSamplingNotUniform reproduces the paper's §3.3 counterexample:
// population D = {1..6} with values u1=u2=u3=a, u4=u5=u6=b and space for one
// (value, count) pair. The histogram H3 = {(a,2), b} (a size-3 sample with
// both values) can NEVER be produced because it does not fit, whereas
// H1 = {(a,3)} and H2 = {(b,3)} occur with positive probability. A uniform
// scheme would give H3 nine times the probability of H1.
func TestConciseSamplingNotUniform(t *testing.T) {
	r := randx.New(1)
	const trials = 20000
	const a, b = 1, 2
	var h1, h2, mixed3 int64
	for trial := 0; trial < trials; trial++ {
		c := NewConcise[int64](conciseCfg(), 0.5, r.Split())
		for i := 0; i < 3; i++ {
			c.Feed(a)
		}
		for i := 0; i < 3; i++ {
			c.Feed(b)
		}
		s, err := c.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		ca, cb := s.Hist.Count(a), s.Hist.Count(b)
		if ca > 0 && cb > 0 {
			if ca+cb == 3 {
				mixed3++
			}
			// Any mixed sample at all violates the footprint bound in this
			// configuration.
			t.Fatalf("concise sample holds both values (a:%d b:%d) with F for one pair", ca, cb)
		}
		if ca == 3 {
			h1++
		}
		if cb == 3 {
			h2++
		}
	}
	if h1 == 0 && h2 == 0 {
		t.Fatal("neither H1 nor H2 ever produced; test misconfigured")
	}
	if mixed3 != 0 {
		t.Fatalf("H3 produced %d times; the paper says it cannot be", mixed3)
	}
	t.Logf("H1 seen %d times, H2 %d times, H3 (mixed size-3) 0 times over %d trials — "+
		"a uniform scheme would make H3 nine times as likely as H1", h1, h2, trials)
}

// TestHBIsUniformWhereConciseIsNot runs the same 6-element workload through
// Algorithm HB with an equivalent element budget and confirms that mixed
// samples DO occur — the uniformity that concise sampling loses.
func TestHBIsUniformWhereConciseIsNot(t *testing.T) {
	r := randx.New(2)
	const trials = 20000
	var mixed int64
	cfg := ConfigForNF(3)
	for trial := 0; trial < trials; trial++ {
		hb := NewHB[int64](cfg, 6, r.Split())
		for i := 0; i < 3; i++ {
			hb.Feed(1)
		}
		for i := 0; i < 3; i++ {
			hb.Feed(2)
		}
		s, err := hb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if s.Hist.Count(1) > 0 && s.Hist.Count(2) > 0 {
			mixed++
		}
	}
	if mixed == 0 {
		t.Fatal("Algorithm HB never produced a mixed sample; uniformity broken")
	}
}

func TestConciseExhaustiveWhenFits(t *testing.T) {
	r := randx.New(3)
	cfg := ConfigForNF(1024)
	c := NewConcise[int64](cfg, 0, r)
	for i := 0; i < 10000; i++ {
		c.Feed(int64(i % 5))
	}
	s, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Exhaustive {
		t.Fatalf("kind = %v; 5 distinct values must fit", s.Kind)
	}
	if s.Hist.Count(0) != 2000 {
		t.Fatalf("count(0) = %d", s.Hist.Count(0))
	}
	if c.Purges() != 0 {
		t.Fatalf("purges = %d", c.Purges())
	}
}

func TestConciseFootprintBound(t *testing.T) {
	r := randx.New(4)
	cfg := ConfigForNF(64)
	c := NewConcise[int64](cfg, 0, r)
	for i := 0; i < 1<<13; i++ {
		c.Feed(int64(i))
		if fp := int64(0); fp > cfg.FootprintBytes { // placeholder for clarity
			_ = fp
		}
	}
	s, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() > cfg.FootprintBytes {
		t.Fatalf("footprint %d exceeds F=%d", s.Footprint(), cfg.FootprintBytes)
	}
	if c.Q() >= 1 {
		t.Fatal("unique stream must have reduced q below 1")
	}
	if c.Purges() == 0 {
		t.Fatal("expected purges on a unique stream")
	}
}

func TestConciseSamplingRateRoughlyHonored(t *testing.T) {
	// After processing, sample size should be near q_final · N for a unique
	// stream (each survivor was retained down to rate ~q_final).
	r := randx.New(5)
	cfg := ConfigForNF(256)
	c := NewConcise[int64](cfg, 0.9, r)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		c.Feed(int64(i))
	}
	q := c.Q()
	s, _ := c.Finalize()
	got := float64(s.Size())
	want := q * n
	// Loose bound: the purge cascade makes exact accounting complicated,
	// but the size must be within a factor of ~1/0.9 of q·N.
	if got < want*0.8 || got > want/0.65 {
		t.Fatalf("size %v vs q·N %v — way off", got, want)
	}
}

func TestConcisePanics(t *testing.T) {
	r := randx.New(6)
	for _, f := range []func(){
		func() { NewConcise[int64](ConfigForNF(16), 1.5, r) },
		func() { NewConcise[int64](ConfigForNF(16), -0.1, r) },
		func() { NewCounting[int64](ConfigForNF(16), 2, r) },
		func() {
			c := NewConcise[int64](ConfigForNF(16), 0, r)
			c.FeedN(1, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	c := NewConcise[int64](ConfigForNF(16), 0, r)
	if _, err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finalize(); err == nil {
		t.Fatal("double finalize")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("feed after finalize did not panic")
			}
		}()
		c.Feed(1)
	}()
}

func TestCountingSamplerCountsExactlyOnceAdmitted(t *testing.T) {
	r := randx.New(7)
	cfg := ConfigForNF(1024)
	c := NewCounting[int64](cfg, 0, r)
	// Small distinct set: everything admitted at q=1, counts exact.
	for i := 0; i < 9000; i++ {
		c.Feed(int64(i % 3))
	}
	s, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 3; v++ {
		if s.Hist.Count(v) != 3000 {
			t.Fatalf("count(%d) = %d, want 3000", v, s.Hist.Count(v))
		}
	}
}

func TestCountingSamplerDelete(t *testing.T) {
	r := randx.New(8)
	cfg := ConfigForNF(1024)
	c := NewCounting[int64](cfg, 0, r)
	for i := 0; i < 100; i++ {
		c.Feed(7)
	}
	for i := 0; i < 40; i++ {
		c.Delete(7)
	}
	if got := c.SampleSize(); got != 60 {
		t.Fatalf("after deletions size = %d, want 60", got)
	}
	// Deleting an untracked value must be a no-op on the histogram.
	c.Delete(999)
	if got := c.SampleSize(); got != 60 {
		t.Fatalf("delete of untracked value changed size to %d", got)
	}
	s, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Hist.Count(7) != 60 {
		t.Fatalf("count = %d", s.Hist.Count(7))
	}
}

func TestCountingSamplerBoundedFootprint(t *testing.T) {
	r := randx.New(9)
	cfg := ConfigForNF(64)
	c := NewCounting[int64](cfg, 0, r)
	for i := 0; i < 1<<13; i++ {
		c.Feed(int64(i))
	}
	s, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Footprint() > cfg.FootprintBytes {
		t.Fatalf("footprint %d > F=%d", s.Footprint(), cfg.FootprintBytes)
	}
	if c.Q() >= 1 {
		t.Fatal("q not reduced on unique stream")
	}
}

func TestMultiPurgeStaysBelowNF(t *testing.T) {
	r := randx.New(10)
	cfg := ConfigForNF(128)
	mp := NewMultiPurge[int64](cfg, 1<<13, 0, r)
	for i := 0; i < 1<<14; i++ { // double the declared N to force purges
		mp.Feed(int64(i))
		if mp.SampleSize() >= 2*128 {
			t.Fatalf("sample size %d runaway", mp.SampleSize())
		}
	}
	s, err := mp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() >= 128 {
		t.Fatalf("final size %d >= nF", s.Size())
	}
	if s.Kind != BernoulliKind {
		t.Fatalf("kind = %v", s.Kind)
	}
	if mp.Purges() == 0 {
		t.Fatal("expected at least one overflow purge")
	}
}

func TestMultiPurgeUniformInclusion(t *testing.T) {
	r := randx.New(11)
	cfg := ConfigForNF(32)
	const n = 1 << 10
	const trials = 3000
	counts := make([]int64, n)
	var total int64
	for trial := 0; trial < trials; trial++ {
		mp := NewMultiPurge[int64](cfg, n/2, 0, r.Split()) // under-declared N forces purging
		for v := int64(0); v < n; v++ {
			mp.Feed(v)
		}
		s, err := mp.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		total += s.Size()
		s.Hist.Each(func(v int64, c int64) { counts[v]++ })
	}
	rate := float64(total) / float64(trials*n)
	for v, c := range counts {
		got := float64(c) / trials
		se := math.Sqrt(rate * (1 - rate) / trials)
		if math.Abs(got-rate) > 6*se {
			t.Errorf("element %d rate %v, want %v", v, got, rate)
		}
	}
}

// TestMultiPurgeDominatedByHB verifies the paper's §4.1 claim used to
// dismiss the variant: its final sample sizes are smaller (and no more
// stable) than Algorithm HB's under the same conditions.
func TestMultiPurgeDominatedByHB(t *testing.T) {
	r := randx.New(12)
	cfg := ConfigForNF(128)
	const n = 1 << 12
	const trials = 200
	var hbTotal, mpTotal int64
	for trial := 0; trial < trials; trial++ {
		// Declare half the real size so both samplers are stressed.
		hb := NewHB[int64](cfg, n/2, r.Split())
		mp := NewMultiPurge[int64](cfg, n/2, 0, r.Split())
		for v := int64(0); v < n; v++ {
			hb.Feed(v)
			mp.Feed(v)
		}
		sh, _ := hb.Finalize()
		sm, _ := mp.Finalize()
		hbTotal += sh.Size()
		mpTotal += sm.Size()
	}
	if mpTotal >= hbTotal {
		t.Fatalf("multi-purge mean size %v >= HB %v; expected HB to dominate",
			float64(mpTotal)/trials, float64(hbTotal)/trials)
	}
}

func TestMultiPurgePanics(t *testing.T) {
	r := randx.New(13)
	for _, f := range []func(){
		func() { NewMultiPurge[int64](ConfigForNF(16), 0, 0, r) },
		func() { NewMultiPurge[int64](ConfigForNF(16), 10, 1.5, r) },
		func() { NewMultiPurge[int64](ConfigForNF(16), 10, 0, r).FeedN(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
