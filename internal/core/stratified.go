package core

import (
	"fmt"

	"samplewh/internal/randx"
)

// Stratified is a stratified random sample of the concatenation of several
// disjoint partitions: the per-partition uniform samples are kept separate
// rather than merged, each stratum knowing its own parent size. The paper
// notes (§4.1) that HB/HR samples "can also be simply concatenated, yielding
// a stratified random sample of the concatenation of the parent data-set
// partitions" — stratified estimators (see the estimate package) are often
// sharper than merging when strata differ systematically.
type Stratified[V comparable] struct {
	strata []*Sample[V]
}

// NewStratified assembles a stratified sample from per-partition samples.
// All samples must share a size model; none may be nil or empty of parent
// data.
func NewStratified[V comparable](samples ...*Sample[V]) (*Stratified[V], error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: NewStratified with no strata")
	}
	for i, s := range samples {
		if s == nil || s.Hist == nil {
			return nil, fmt.Errorf("core: stratum %d is nil", i)
		}
		if s.ParentSize <= 0 {
			return nil, fmt.Errorf("core: stratum %d has parent size %d", i, s.ParentSize)
		}
		if i > 0 {
			if err := mergeCompatible(samples[0], s); err != nil {
				return nil, err
			}
		}
	}
	return &Stratified[V]{strata: samples}, nil
}

// Strata returns the per-partition samples (shared, not copied).
func (st *Stratified[V]) Strata() []*Sample[V] { return st.strata }

// NumStrata returns the number of strata.
func (st *Stratified[V]) NumStrata() int { return len(st.strata) }

// ParentSize returns the total parent population across strata.
func (st *Stratified[V]) ParentSize() int64 {
	var n int64
	for _, s := range st.strata {
		n += s.ParentSize
	}
	return n
}

// SampleSize returns the total number of sampled elements across strata.
func (st *Stratified[V]) SampleSize() int64 {
	var n int64
	for _, s := range st.strata {
		n += s.Size()
	}
	return n
}

// Collapse merges the strata into one uniform sample of the union using the
// given pairwise merge (losing the stratification but regaining a bounded
// footprint). The strata are consumed.
func (st *Stratified[V]) Collapse(merge MergeFunc[V], src randx.Source) (*Sample[V], error) {
	return MergeTree(st.strata, merge, src)
}

// UnionBernoulli unions any number of Bernoulli samples of disjoint
// partitions into a single Bernoulli sample of the union, as the paper's
// §4.1 closing note describes: "simply unioning the samples together yields
// a Bern(q) sample from the union of the parent partitions. Such unioning is
// useful when enforcing an upper bound on the sample size is not an issue."
// Samples with differing rates are first equalized to the minimum rate with
// purgeBernoulli. The inputs are consumed.
func UnionBernoulli[V comparable](samples []*Sample[V], src randx.Source) (*Sample[V], error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: UnionBernoulli with no samples")
	}
	minQ := 1.0
	for i, s := range samples {
		if s.Kind == Exhaustive {
			continue // an exhaustive sample is a Bern(1) sample
		}
		if s.Kind != BernoulliKind {
			return nil, fmt.Errorf("core: UnionBernoulli: sample %d has kind %s", i, s.Kind)
		}
		if i > 0 {
			if err := mergeCompatible(samples[0], s); err != nil {
				return nil, err
			}
		}
		if s.Q < minQ {
			minQ = s.Q
		}
	}
	out := &Sample[V]{
		Kind:   BernoulliKind,
		Q:      minQ,
		Config: samples[0].Config.normalized(),
	}
	for _, s := range samples {
		rate := 1.0
		if s.Kind == BernoulliKind {
			rate = s.Q
		}
		if rate > minQ {
			PurgeBernoulli(s.Hist, minQ/rate, src)
		}
		if out.Hist == nil {
			out.Hist = s.Hist
		} else {
			out.Hist.Join(s.Hist)
		}
		out.ParentSize += s.ParentSize
	}
	if minQ == 1 {
		out.Kind = Exhaustive
	}
	return out, nil
}
