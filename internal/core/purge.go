package core

import (
	"fmt"

	"samplewh/internal/fenwick"
	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// PurgeBernoulli subsamples the compact histogram h in place so that each of
// its data elements survives independently with probability q: the paper's
// purgeBernoulli(S, q) (Figure 3). Each (v, n) pair is processed with a
// single binomial(n, q) draw rather than n coin flips; pairs whose count
// drops to zero are removed.
//
// If S was a Bern(r) sample of a partition D, the purged S is a Bern(r·q)
// sample of D (paper §3.1).
//
// q ≥ 1 is a no-op; q ≤ 0 empties the histogram.
func PurgeBernoulli[V comparable](h *histogram.Histogram[V], q float64, src randx.Source) {
	if q >= 1 {
		return
	}
	if q <= 0 {
		h.Reset()
		return
	}
	// Walk the entries by index. SetCount(i, 0) compacts by swapping the
	// last (not yet visited) entry into slot i, so on removal we stay at i.
	for i := 0; i < h.Distinct(); {
		n := randx.Binomial(src, h.Entry(i).Count, q)
		before := h.Distinct()
		h.SetCount(i, n)
		if h.Distinct() == before {
			i++
		}
	}
}

// PurgeReservoir subsamples the compact histogram h in place to a simple
// random sample (without replacement) of m of its data elements: the paper's
// purgeReservoir(S, M) (Figure 4). The procedure streams over the expanded
// elements implicitly, using Vitter skips to jump between inclusions and a
// Fenwick tree for O(log) victim selection, so its cost depends on the
// number of entries and m — never on the expanded size of h.
//
// If h holds m or fewer elements the call is a no-op (the reservoir would
// retain everything).
func PurgeReservoir[V comparable](h *histogram.Histogram[V], m int64, src randx.Source) {
	if m < 0 {
		panic(fmt.Sprintf("core: PurgeReservoir with m = %d < 0", m))
	}
	if m == 0 {
		h.Reset()
		return
	}
	if h.Size() <= m {
		return
	}
	entries := h.Entries() // snapshot: (v_1,n_1), ..., (v_m,n_m) in order
	newCounts := make([]int64, len(entries))
	tree := fenwick.New(len(entries)) // reservoir contents by entry

	sk := randx.NewSkipper(src, m)
	var b int64   // current upper bucket boundary (paper's b)
	var l int64   // current number of values in the reservoir (paper's L)
	j := int64(1) // 1-based index of the next element to include

	for i := range entries {
		b += entries[i].Count
		for j <= b {
			if l == m {
				// Evict a uniformly random victim from the reservoir.
				v := randx.UniformInt(src, m)
				victim := tree.Select(v)
				tree.Add(victim, -1)
				newCounts[victim]--
				l--
			}
			tree.Add(i, 1)
			newCounts[i]++
			l++
			// Advance to the next inclusion. During warm-up (j <= m) every
			// element is included; afterwards Vitter skips apply.
			if j < m {
				j++
			} else {
				j += sk.Skip(j) + 1
			}
		}
	}

	// Rebuild h from the reservoir counts.
	h.Reset()
	for i, e := range entries {
		if newCounts[i] > 0 {
			h.Insert(e.Value, newCounts[i])
		}
	}
}
