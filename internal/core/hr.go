package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/obs"
	"samplewh/internal/randx"
)

// HR implements Algorithm HR, the paper's hybrid reservoir sampler
// (§4.2, Figure 7). Like Algorithm HB it starts by maintaining the exact
// compact histogram; when the footprint would exceed F it switches to
// reservoir sampling with reservoir size n_F. Unlike Algorithm HB it needs
// no advance knowledge of the partition size, and its final sample size is
// stable (exactly n_F once the reservoir phase is entered), at the cost of
// more expensive merges (HRMerge's hypergeometric split).
//
// A subtlety reproduced from Figure 7: on the phase switch the sample is NOT
// immediately cut down to n_F. The exact histogram is retained and the
// reservoir subsample (purgeReservoir) is taken lazily at the first
// reservoir insertion — or at Finalize if no insertion ever happens. Both
// orderings yield the same distribution because the skip lengths are
// independent of the purge.
type HR[V comparable] struct {
	cfg Config
	nf  int64
	src randx.Source

	phase     Phase
	hist      *histogram.Histogram[V] // exact histogram until purged+expanded
	bag       []V
	purged    bool
	expanded  bool
	seen      int64
	next      int64 // 1-based index of next reservoir insertion
	rk        int64 // reservoir capacity (n_F, except when a merge seeds the sampler from a smaller reservoir sample)
	sk        *randx.Skipper
	finalized bool
	o         samplerObs
}

// Instrument routes the sampler's metrics and events into reg, labelled
// with the given partition ID (empty is fine). Call it before the first
// Feed; a nil registry leaves the sampler uninstrumented.
func (s *HR[V]) Instrument(reg *obs.Registry, partition string) {
	s.o = newSamplerObs(reg, "core.hr", partition)
}

// NewHR returns an Algorithm HR sampler. It panics on invalid configuration.
// The configuration must satisfy CountBytes <= ValueBytes (true of the
// default model), which guarantees that at least n_F elements have arrived
// by the time the footprint bound is hit, so the reservoir is well defined.
func NewHR[V comparable](cfg Config, src randx.Source) *HR[V] {
	cfg = cfg.normalized()
	if cfg.SizeModel.CountBytes > cfg.SizeModel.ValueBytes {
		panic(fmt.Sprintf("core: NewHR requires CountBytes (%d) <= ValueBytes (%d)",
			cfg.SizeModel.CountBytes, cfg.SizeModel.ValueBytes))
	}
	return &HR[V]{
		cfg:   cfg,
		nf:    cfg.NF(),
		src:   src,
		phase: PhaseExact,
		hist:  histogram.New[V](cfg.SizeModel),
	}
}

// Phase returns the sampler's current phase (PhaseExact or PhaseReservoir).
func (s *HR[V]) Phase() Phase { return s.phase }

// NF returns the reservoir size bound n_F.
func (s *HR[V]) NF() int64 { return s.nf }

// Seen returns the number of elements processed.
func (s *HR[V]) Seen() int64 { return s.seen }

// SampleSize returns the current number of sampled data elements. Between
// the phase switch and the lazy purge this may still exceed n_F.
func (s *HR[V]) SampleSize() int64 {
	if s.expanded {
		return int64(len(s.bag))
	}
	return s.hist.Size()
}

// CurrentFootprint returns the byte footprint of the in-progress sample.
// Between the phase switch and the lazy purge this may still equal F (the
// retained exact histogram); it never exceeds F.
func (s *HR[V]) CurrentFootprint() int64 {
	if s.expanded {
		return int64(len(s.bag)) * s.cfg.SizeModel.ValueBytes
	}
	return s.hist.Footprint()
}

// Feed processes the next arriving data element (Figure 7 executed once).
func (s *HR[V]) Feed(v V) { s.FeedN(v, 1) }

// FeedN processes a run of n equal values with skip shortcuts.
func (s *HR[V]) FeedN(v V, n int64) {
	if s.finalized {
		panic("core: HR sampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	s.o.countItems(n)
	for n > 0 {
		if s.phase == PhaseExact {
			n = s.feedExact(v, n)
		} else {
			n = s.feedReservoir(v, n)
		}
	}
}

// feedExact is phase 1 of Figure 7; returns the unprocessed remainder of the
// run after a phase transition.
func (s *HR[V]) feedExact(v V, n int64) int64 {
	for n > 0 {
		// Switch to reservoir mode BEFORE an insert could push the
		// footprint past F (see HB.feedExact).
		if s.hist.FootprintAfterInsert(v) > s.cfg.FootprintBytes {
			s.enterReservoir(s.nf)
			s.o.transition(PhaseExact, PhaseReservoir, s.seen, s.SampleSize(), s.CurrentFootprint())
			return n
		}
		s.hist.Insert(v, 1)
		s.seen++
		n--
		// Same bulk shortcut as Algorithm HB: once v is a pair, further
		// copies cannot change the footprint.
		if n > 0 && s.hist.Count(v) >= 2 {
			s.hist.Insert(v, n)
			s.seen += n
			return 0
		}
	}
	return 0
}

// enterReservoir switches to reservoir mode with capacity k and schedules
// the next insertion.
func (s *HR[V]) enterReservoir(k int64) {
	s.phase = PhaseReservoir
	s.rk = k
	s.sk = randx.NewSkipper(s.src, k)
	s.next = s.seen + 1 + s.sk.Skip(s.seen)
}

// feedReservoir is phase 2 of Figure 7 over a run of n equal values.
func (s *HR[V]) feedReservoir(v V, n int64) int64 {
	end := s.seen + n
	for s.next <= end {
		s.ensureReady()
		s.bag[randx.Intn(s.src, len(s.bag))] = v
		s.o.inserts.Inc()
		s.next = s.next + 1 + s.sk.Skip(s.next)
	}
	s.seen = end
	return 0
}

// ensureReady performs the lazy purge-to-n_F and expansion of Figure 7
// lines 9–11 at the first reservoir insertion.
func (s *HR[V]) ensureReady() {
	if s.expanded {
		return
	}
	if !s.purged {
		before := s.hist.Size()
		PurgeReservoir(s.hist, s.rk, s.src)
		s.o.purge("reservoir", before, s.hist.Size(), s.seen)
		s.purged = true
	}
	s.bag = s.hist.Expand()
	s.hist = nil
	s.expanded = true
}

// Finalize converts the sample to compact form and returns it: the exact
// partition histogram if the footprint bound was never reached, otherwise a
// simple random sample of n_F elements.
func (s *HR[V]) Finalize() (*Sample[V], error) {
	if s.finalized {
		return nil, fmt.Errorf("core: HR sampler already finalized")
	}
	s.finalized = true
	out := &Sample[V]{
		ParentSize: s.seen,
		Config:     s.cfg,
	}
	switch {
	case s.phase == PhaseExact:
		out.Kind = Exhaustive
		out.Q = 1
		out.Hist = s.hist
	case s.expanded:
		out.Kind = ReservoirKind
		out.Hist = histogram.FromBag(s.cfg.SizeModel, s.bag)
		s.bag = nil
	default:
		// Phase switch happened but no insertion followed: apply the lazy
		// purge now so the bound holds.
		if !s.purged {
			before := s.hist.Size()
			PurgeReservoir(s.hist, s.rk, s.src)
			s.o.purge("reservoir", before, s.hist.Size(), s.seen)
		}
		out.Kind = ReservoirKind
		out.Hist = s.hist
	}
	s.hist = nil
	s.o.finalize(out.Kind, s.seen, out.Size(), out.Footprint())
	return out, nil
}

var _ Sampler[int64] = (*HR[int64])(nil)
