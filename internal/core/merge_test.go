package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// makeSample collects a sample of the integers [lo, hi) with the given
// sampler constructor.
func collectHB(t *testing.T, cfg Config, lo, hi int64, src randx.Source) *Sample[int64] {
	t.Helper()
	hb := NewHB[int64](cfg, hi-lo, src)
	for v := lo; v < hi; v++ {
		hb.Feed(v)
	}
	s, err := hb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func collectHR(t *testing.T, cfg Config, lo, hi int64, src randx.Source) *Sample[int64] {
	t.Helper()
	hr := NewHR[int64](cfg, src)
	for v := lo; v < hi; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHRMergeTwoReservoirsTheorem1(t *testing.T) {
	// Theorem 1: merging two reservoir samples yields a simple random sample
	// of size k = min(|S1|,|S2|) of D1 ∪ D2. Verify per-element inclusion
	// probability k/(|D1|+|D2|) for asymmetric partitions.
	r := randx.New(1)
	const n1, n2 = 600, 1400
	const trials = 3000
	cfg := smallCfg(32)
	counts := make([]int64, n1+n2)
	for trial := 0; trial < trials; trial++ {
		s1 := collectHR(t, cfg, 0, n1, r.Split())
		s2 := collectHR(t, cfg, n1, n1+n2, r.Split())
		m, err := HRMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != ReservoirKind {
			t.Fatalf("kind = %v", m.Kind)
		}
		if m.Size() != 32 {
			t.Fatalf("merged size = %d, want 32", m.Size())
		}
		if m.ParentSize != n1+n2 {
			t.Fatalf("parent = %d", m.ParentSize)
		}
		m.Hist.Each(func(v int64, c int64) { counts[v]++ })
	}
	want := float64(trials) * 32 / (n1 + n2)
	var tooFar int
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%.1f", v, c, want)
			tooFar++
			if tooFar > 20 {
				t.Fatal("too many failures")
			}
		}
	}
	// Crucially: elements of the big partition must not be under- or
	// over-represented relative to the small one.
	var smallSide, bigSide int64
	for v, c := range counts {
		if int64(v) < n1 {
			smallSide += c
		} else {
			bigSide += c
		}
	}
	gotRatio := float64(smallSide) / float64(smallSide+bigSide)
	wantRatio := float64(n1) / (n1 + n2)
	if math.Abs(gotRatio-wantRatio) > 0.01 {
		t.Errorf("partition-1 share = %v, want %v", gotRatio, wantRatio)
	}
}

func TestHRMergeSubsetUniformity(t *testing.T) {
	// Exact subset-level check of Theorem 1 on a tiny domain: D1 = {0,1,2},
	// D2 = {3,4,5}, reservoir samples of size 2 each, merged size 2; all 15
	// pairs must be equally likely.
	r := randx.New(2)
	const trials = 90000
	cfg := smallCfg(2)
	counts := map[uint8]int64{}
	for trial := 0; trial < trials; trial++ {
		s1 := collectHR(t, cfg, 0, 3, r.Split())
		s2 := collectHR(t, cfg, 3, 6, r.Split())
		m, err := HRMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Size() != 2 {
			t.Fatalf("merged size = %d", m.Size())
		}
		var mask uint8
		m.Hist.Each(func(v int64, c int64) {
			for j := int64(0); j < c; j++ {
				mask |= 1 << uint(v)
			}
		})
		counts[mask]++
	}
	if len(counts) != 15 {
		t.Fatalf("observed %d of 15 subsets", len(counts))
	}
	want := float64(trials) / 15
	for mask, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("subset %06b: %d, want ~%.0f", mask, c, want)
		}
	}
}

func TestHRMergeExhaustivePlusReservoir(t *testing.T) {
	r := randx.New(3)
	cfg := smallCfg(64)
	const trials = 3000
	counts := make([]int64, 1024+32)
	for trial := 0; trial < trials; trial++ {
		// Exhaustive sample of a small partition.
		s1 := collectHR(t, cfg, 1024, 1024+32, r.Split())
		if s1.Kind != Exhaustive {
			t.Fatalf("small partition not exhaustive: %v", s1.Kind)
		}
		// Reservoir sample of a big partition.
		s2 := collectHR(t, cfg, 0, 1024, r.Split())
		if s2.Kind != ReservoirKind {
			t.Fatalf("big partition not reservoir: %v", s2.Kind)
		}
		m, err := HRMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.ParentSize != 1056 {
			t.Fatalf("parent = %d", m.ParentSize)
		}
		if m.Size() != 64 {
			t.Fatalf("merged size = %d, want 64 (reservoir side's size preserved)", m.Size())
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	want := float64(trials) * 64 / 1056
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 7*math.Sqrt(want) {
			t.Errorf("element %d: %d inclusions, want ~%.1f", v, c, want)
		}
	}
}

func TestHRMergeBothExhaustiveStaysExact(t *testing.T) {
	r := randx.New(4)
	cfg := smallCfg(1024)
	s1 := collectHR(t, cfg, 0, 100, r.Split())
	s2 := collectHR(t, cfg, 100, 300, r.Split())
	m, err := HRMerge(s1, s2, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Exhaustive {
		t.Fatalf("kind = %v, want exhaustive (union fits)", m.Kind)
	}
	if m.Size() != 300 || m.ParentSize != 300 {
		t.Fatalf("size=%d parent=%d", m.Size(), m.ParentSize)
	}
	for v := int64(0); v < 300; v++ {
		if m.Hist.Count(v) != 1 {
			t.Fatalf("count(%d) = %d", v, m.Hist.Count(v))
		}
	}
}

func TestHBMergeBothBernoulli(t *testing.T) {
	r := randx.New(5)
	cfg := smallCfg(512)
	const n = 1 << 14
	const trials = 1500
	counts := make([]int64, 2*n)
	var sizes []float64
	rare := 0
	for trial := 0; trial < trials; trial++ {
		s1 := collectHB(t, cfg, 0, n, r.Split())
		s2 := collectHB(t, cfg, n, 2*n, r.Split())
		if s1.Kind != BernoulliKind || s2.Kind != BernoulliKind {
			// With exceedance probability p = 0.001 a handful of the 3000
			// samples legitimately fall back to the reservoir phase.
			rare++
			if rare > 20 {
				t.Fatalf("too many reservoir fallbacks: %d", rare)
			}
			continue
		}
		m, err := HBMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != BernoulliKind {
			// The merge's own overflow fallback fires with probability ~p.
			rare++
			if rare > 20 {
				t.Fatalf("too many overflow fallbacks: %d", rare)
			}
			continue
		}
		wantQ := QApprox(2*n, cfg.ExceedProb, 512)
		if math.Abs(m.Q-wantQ) > 1e-12 {
			t.Fatalf("merged q = %v, want %v", m.Q, wantQ)
		}
		if m.ParentSize != 2*n {
			t.Fatalf("parent = %d", m.ParentSize)
		}
		sizes = append(sizes, float64(m.Size()))
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	used := len(sizes)
	if used < trials-20 {
		t.Fatalf("only %d usable trials", used)
	}
	// Inclusion probability must equal the merged q for every element.
	wantQ := QApprox(2*n, cfg.ExceedProb, 512)
	var total int64
	for _, c := range counts {
		total += c
	}
	gotRate := float64(total) / float64(used*2*n)
	if math.Abs(gotRate-wantQ)/wantQ > 0.02 {
		t.Errorf("overall inclusion rate %v, want %v", gotRate, wantQ)
	}
	var firstHalf, secondHalf int64
	for v, c := range counts {
		if v < n {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	if ratio := float64(firstHalf) / float64(firstHalf+secondHalf); math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("partition share = %v, want 0.5", ratio)
	}
}

func TestHBMergeExhaustivePlusBernoulli(t *testing.T) {
	r := randx.New(6)
	cfg := smallCfg(256)
	const big = 1 << 13
	const small = 100
	const trials = 2000
	counts := make([]int64, big+small)
	for trial := 0; trial < trials; trial++ {
		s1 := collectHB(t, cfg, 0, big, r.Split()) // Bernoulli
		s2 := collectHB(t, cfg, big, big+small, r.Split())
		if s2.Kind != Exhaustive {
			t.Fatalf("small sample kind %v", s2.Kind)
		}
		m, err := HBMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.ParentSize != big+small {
			t.Fatalf("parent = %d", m.ParentSize)
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	// All elements — from both partitions — must be included at the same
	// rate (the rate is the phase-2 q of the big partition's sampler).
	var sideA, sideB int64
	for v, c := range counts {
		if v < big {
			sideA += c
		} else {
			sideB += c
		}
	}
	rateA := float64(sideA) / float64(trials*big)
	rateB := float64(sideB) / float64(trials*small)
	if math.Abs(rateA-rateB)/rateA > 0.05 {
		t.Errorf("inclusion rates differ: big partition %v vs small %v", rateA, rateB)
	}
}

func TestHBMergeOverflowFallsBackToReservoir(t *testing.T) {
	// Engineer the low-probability overflow: two Bernoulli samples whose
	// joined footprint exceeds F. Easiest route: merge many samples so q
	// stays high relative to the data, using a tiny F and heavy duplicates
	// is fiddly — instead, construct the samples directly.
	r := randx.New(7)
	cfg := smallCfg(16)
	mk := func(lo int64) *Sample[int64] {
		h := histogram.New[int64](cfg.SizeModel)
		for v := lo; v < lo+15; v++ {
			h.Insert(v, 1)
		}
		return &Sample[int64]{
			Kind:       BernoulliKind,
			Hist:       h,
			ParentSize: 20,
			Q:          0.75,
			Config:     cfg,
		}
	}
	s1, s2 := mk(0), mk(100)
	m, err := HBMerge(s1, s2, r)
	if err != nil {
		t.Fatal(err)
	}
	// q(40, p, 16) is well below 0.75, so both sides get thinned; if the
	// join still does not fit, the reservoir path runs. Either way the
	// footprint bound must hold.
	if m.Footprint() > cfg.FootprintBytes {
		t.Fatalf("merged footprint %d > F=%d", m.Footprint(), cfg.FootprintBytes)
	}
	if m.ParentSize != 40 {
		t.Fatalf("parent = %d", m.ParentSize)
	}
}

func TestHBMergeReservoirOverflowPathDirect(t *testing.T) {
	// Force the lines 15–16 path deterministically: Bernoulli samples with
	// q = 1 relative to tiny declared parents would not thin at all if the
	// merged q is also ~1 — so use parents large enough that the merged
	// footprint check still fails after thinning is skipped (q/qi >= 1).
	r := randx.New(8)
	cfg := smallCfg(4) // F = 32 bytes; any 4 singletons fill it
	h1 := histogram.New[int64](cfg.SizeModel)
	h2 := histogram.New[int64](cfg.SizeModel)
	for v := int64(0); v < 3; v++ {
		h1.Insert(v, 1)
		h2.Insert(100+v, 1)
	}
	lowQ := QApprox(12, cfg.ExceedProb, 4) // merged q for parent size 12
	s1 := &Sample[int64]{Kind: BernoulliKind, Hist: h1, ParentSize: 6, Q: lowQ, Config: cfg}
	s2 := &Sample[int64]{Kind: BernoulliKind, Hist: h2, ParentSize: 6, Q: lowQ, Config: cfg}
	// Merged q equals lowQ (same total parent), so PurgeBernoulli(ratio>=1)
	// keeps everything and join footprint = 48 > 32 → reservoir path.
	m, err := HBMerge(s1, s2, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ReservoirKind {
		t.Fatalf("kind = %v, want reservoir fallback", m.Kind)
	}
	if m.Size() != 4 {
		t.Fatalf("size = %d, want nF = 4", m.Size())
	}
}

func TestMergeDispatch(t *testing.T) {
	r := randx.New(9)
	cfg := smallCfg(64)
	// bernoulli + reservoir → reservoir result via HRMerge.
	s1 := collectHB(t, cfg, 0, 1<<13, r.Split())
	hrS := collectHR(t, cfg, 1<<13, 1<<14, r.Split())
	if s1.Kind != BernoulliKind || hrS.Kind != ReservoirKind {
		t.Fatalf("setup kinds: %v %v", s1.Kind, hrS.Kind)
	}
	m, err := Merge(s1, hrS, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ReservoirKind {
		t.Fatalf("merge(bern, res) kind = %v", m.Kind)
	}
}

func TestMergeIncompatibleConfigs(t *testing.T) {
	r := randx.New(10)
	s1 := collectHB(t, smallCfg(64), 0, 100, r.Split())
	s2 := collectHB(t, smallCfg(128), 100, 200, r.Split())
	if _, err := Merge(s1, s2, r); err == nil {
		t.Fatal("merge across footprints did not error")
	}
}

func TestMergeSerialAndTree(t *testing.T) {
	r := randx.New(11)
	cfg := smallCfg(128)
	const parts = 9
	const per = 1 << 11
	build := func() []*Sample[int64] {
		var ss []*Sample[int64]
		for i := int64(0); i < parts; i++ {
			ss = append(ss, collectHR(t, cfg, i*per, (i+1)*per, r.Split()))
		}
		return ss
	}
	serial, err := MergeSerial(build(), HRMerge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := MergeTree(build(), HRMerge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Sample[int64]{serial, tree} {
		if m.ParentSize != parts*per {
			t.Fatalf("parent = %d", m.ParentSize)
		}
		if m.Size() != 128 {
			t.Fatalf("size = %d", m.Size())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeSerialEmpty(t *testing.T) {
	r := randx.New(12)
	if _, err := MergeSerial[int64](nil, HRMerge, r); err == nil {
		t.Fatal("empty MergeSerial did not error")
	}
	if _, err := MergeTree[int64](nil, HRMerge, r); err == nil {
		t.Fatal("empty MergeTree did not error")
	}
}

func TestMergeSingleSample(t *testing.T) {
	r := randx.New(13)
	cfg := smallCfg(64)
	s := collectHR(t, cfg, 0, 1000, r.Split())
	m, err := MergeTree([]*Sample[int64]{s}, HRMerge, r)
	if err != nil {
		t.Fatal(err)
	}
	if m != s {
		t.Fatal("single-sample merge should return the sample itself")
	}
}

func TestMergeTreeUniformInclusionAcross64Partitions(t *testing.T) {
	// End-to-end pipeline check at moderate scale: 64 partitions of 256
	// distinct elements each, HR sampling + tree merge; every element's
	// inclusion probability must be k/N.
	r := randx.New(14)
	cfg := smallCfg(64)
	const parts = 64
	const per = 256
	const trials = 600
	counts := make([]int64, parts*per)
	for trial := 0; trial < trials; trial++ {
		var ss []*Sample[int64]
		for i := int64(0); i < parts; i++ {
			ss = append(ss, collectHR(t, cfg, i*per, (i+1)*per, r.Split()))
		}
		m, err := MergeTree(ss, HRMerge, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Size() != 64 {
			t.Fatalf("merged size = %d", m.Size())
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	want := float64(trials) * 64 / float64(parts*per)
	sum := 0.0
	for _, c := range counts {
		sum += float64(c)
	}
	if math.Abs(sum/float64(len(counts))-want) > 0.05*want {
		t.Errorf("mean inclusion %v, want %v", sum/float64(len(counts)), want)
	}
	// Partition-level shares: no partition may be systematically favored.
	for i := 0; i < parts; i++ {
		var pc int64
		for j := 0; j < per; j++ {
			pc += counts[i*per+j]
		}
		wantP := want * per
		if math.Abs(float64(pc)-wantP) > 6*math.Sqrt(wantP) {
			t.Errorf("partition %d got %d inclusions, want ~%.0f", i, pc, wantP)
		}
	}
}

func TestSBMergeEqualRates(t *testing.T) {
	r := randx.New(15)
	cfg := smallCfg(1 << 20)
	const n = 1 << 12
	sb1 := NewSB[int64](cfg, 0.01, r.Split())
	sb2 := NewSB[int64](cfg, 0.01, r.Split())
	for v := int64(0); v < n; v++ {
		sb1.Feed(v)
		sb2.Feed(n + v)
	}
	s1, _ := sb1.Finalize()
	s2, _ := sb2.Finalize()
	m, err := SBMerge(s1, s2, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.Q != 0.01 || m.ParentSize != 2*n {
		t.Fatalf("q=%v parent=%d", m.Q, m.ParentSize)
	}
}

func TestSBMergeUnequalRatesEqualizes(t *testing.T) {
	r := randx.New(16)
	cfg := smallCfg(1 << 20)
	const n = 1 << 14
	const trials = 400
	var side1, side2 int64
	for trial := 0; trial < trials; trial++ {
		sb1 := NewSB[int64](cfg, 0.05, r.Split())
		sb2 := NewSB[int64](cfg, 0.02, r.Split())
		for v := int64(0); v < n; v++ {
			sb1.Feed(v)
			sb2.Feed(n + v)
		}
		s1, _ := sb1.Finalize()
		s2, _ := sb2.Finalize()
		m, err := SBMerge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if m.Q != 0.02 {
			t.Fatalf("merged q = %v, want 0.02", m.Q)
		}
		m.Hist.Each(func(v int64, c int64) {
			if v < n {
				side1 += c
			} else {
				side2 += c
			}
		})
	}
	r1 := float64(side1) / float64(trials*n)
	r2 := float64(side2) / float64(trials*n)
	if math.Abs(r1-0.02) > 0.001 || math.Abs(r2-0.02) > 0.001 {
		t.Fatalf("post-equalization rates %v / %v, want 0.02", r1, r2)
	}
}

func TestSBMergeRejectsNonBernoulli(t *testing.T) {
	r := randx.New(17)
	cfg := smallCfg(64)
	s1 := collectHR(t, cfg, 0, 10000, r.Split())
	s2 := collectHB(t, cfg, 0, 100, r.Split())
	if _, err := SBMerge(s1, s2, r); err == nil {
		t.Fatal("SBMerge accepted a reservoir sample")
	}
}

func TestAbsorbIntoReservoirWarmUp(t *testing.T) {
	// Absorbing into an underfull bag must first fill it.
	r := randx.New(18)
	h := histogram.New[int64](histogram.DefaultSizeModel)
	h.Insert(7, 3)
	bag := []int64{1, 2}
	out := absorbIntoReservoir(bag, 5, 2, h, r)
	if len(out) != 5 {
		t.Fatalf("bag size %d, want 5", len(out))
	}
	var sevens int
	for _, v := range out {
		if v == 7 {
			sevens++
		}
	}
	if sevens != 3 {
		t.Fatalf("absorbed %d sevens, want 3 (all, since total fits)", sevens)
	}
}

func TestSampleCloneAndString(t *testing.T) {
	r := randx.New(19)
	s := collectHR(t, smallCfg(64), 0, 1000, r)
	c := s.Clone()
	c.Hist.Insert(99999, 5)
	if s.Hist.Count(99999) != 0 {
		t.Fatal("clone shares histogram")
	}
	if s.String() == "" || s.Kind.String() == "" {
		t.Fatal("String() empty")
	}
	if Kind(99).String() == "" || Phase(99).String() == "" {
		t.Fatal("unknown enum String() empty")
	}
}
