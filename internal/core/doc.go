// Package core implements the paper's primary contribution: bounded-footprint,
// compact, statistically uniform sampling of data-set partitions and merging
// of the per-partition samples.
//
// The samplers are
//
//   - HB (hybrid Bernoulli, paper §4.1 Figure 2): exact histogram →
//     Bernoulli(q) with q from equation (1) → reservoir fallback;
//   - HR (hybrid reservoir, paper §4.2 Figure 7): exact histogram →
//     reservoir of size n_F;
//   - SB (stratified Bernoulli, paper §5): the fixed-rate baseline with no
//     footprint bound;
//   - Concise and Counting samples (Gibbons & Matias, paper §3.3): the prior
//     art the paper proves non-uniform, kept as baselines.
//
// Finalized samples are Sample values that record their statistical kind
// (exhaustive, Bernoulli, or reservoir) together with the parent partition
// size; Merge combines two Samples from disjoint partitions into a uniform
// Sample of the union, implementing HBMerge (Figure 6) and HRMerge
// (Figure 8, Theorem 1).
//
// All randomness flows through an explicit randx.Source, so every sampler
// and merge is reproducible from a seed.
package core
