package core

import (
	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// SymmetricMerger accelerates repeated HRMerge operations in the scenario
// the paper's §4.2 describes: "the partition sizes and sample sizes are
// unchanging and merges are performed in a symmetric pairwise fashion, in
// which case we need to produce many samples from a fixed probability
// vector P (actually, from a small collection of such probability vectors
// that correspond to the different levels in the binary tree that
// represents the merge steps). In this case, the alias method can be used
// to increase generation efficiency."
//
// The merger caches one Walker alias table per distinct hypergeometric
// parameter triple (|D1|, |D2|, k); a balanced merge tree over equal-size
// partitions touches only O(log n) distinct triples, so every level after
// the first draws its split L in O(1).
type SymmetricMerger[V comparable] struct {
	cache map[[3]int64]*randx.AliasTable
}

// NewSymmetricMerger returns a merger with an empty alias-table cache.
func NewSymmetricMerger[V comparable]() *SymmetricMerger[V] {
	return &SymmetricMerger[V]{cache: make(map[[3]int64]*randx.AliasTable)}
}

// CachedTables returns the number of distinct alias tables built so far.
func (m *SymmetricMerger[V]) CachedTables() int { return len(m.cache) }

// Merge performs HRMerge with alias-table acceleration of the
// hypergeometric draw. Semantics are identical to HRMerge; inputs are
// consumed. Its method value satisfies MergeFunc for use with MergeTree.
func (m *SymmetricMerger[V]) Merge(s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	if err := mergeCompatible(s1, s2); err != nil {
		return nil, err
	}
	// Exhaustive cases delegate to the plain implementation (no
	// hypergeometric draw is involved there).
	if s1.Kind == Exhaustive || s2.Kind == Exhaustive {
		return HRMerge(s1, s2, src)
	}
	cfg := s1.Config.normalized()
	k := s1.Size()
	if s2.Size() < k {
		k = s2.Size()
	}
	out := &Sample[V]{
		Kind:       ReservoirKind,
		ParentSize: s1.ParentSize + s2.ParentSize,
		Config:     cfg,
	}
	if k == 0 {
		out.Hist = histogram.New[V](cfg.SizeModel)
		return out, nil
	}
	key := [3]int64{s1.ParentSize, s2.ParentSize, k}
	table, ok := m.cache[key]
	if !ok {
		table = randx.NewHypergeom(s1.ParentSize, s2.ParentSize, k).Alias()
		m.cache[key] = table
	}
	l := table.Sample(src)
	PurgeReservoir(s1.Hist, l, src)
	PurgeReservoir(s2.Hist, k-l, src)
	s1.Hist.Join(s2.Hist)
	out.Hist = s1.Hist
	return out, nil
}

var _ MergeFunc[int64] = (*SymmetricMerger[int64])(nil).Merge
