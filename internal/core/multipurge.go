package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// MultiPurgeSampler is the Algorithm HB variant sketched (and dismissed) in
// the paper's §4.1: phase 3 is eliminated and instead, whenever the sample
// size reaches n_F during the Bernoulli phase, the sample is repeatedly
// purged by Bernoulli subsampling with ever-smaller rates, in the manner of
// concise sampling (but purging elements, not representation space, so the
// result stays uniform).
//
// The paper predicts — and our ablation benchmark confirms — that this
// variant is dominated by Algorithm HB: it is somewhat more expensive on
// average and its final sample sizes are smaller and less stable. It exists
// so the design choice is measurable.
type MultiPurgeSampler[V comparable] struct {
	cfg       Config
	nf        int64
	factor    float64
	q         float64
	src       randx.Source
	phase     Phase
	hist      *histogram.Histogram[V]
	bag       []V
	expanded  bool
	seen      int64
	purges    int64
	finalized bool
}

// NewMultiPurge returns the multiple-purge variant for a partition of
// expected size expectedN. factor (0 < factor < 1; 0 selects
// DefaultPurgeFactor) scales q at each overflow purge.
func NewMultiPurge[V comparable](cfg Config, expectedN int64, factor float64, src randx.Source) *MultiPurgeSampler[V] {
	cfg = cfg.normalized()
	if expectedN < 1 {
		panic(fmt.Sprintf("core: NewMultiPurge with expectedN = %d < 1", expectedN))
	}
	if factor == 0 {
		factor = DefaultPurgeFactor
	}
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("core: NewMultiPurge with factor %v outside (0,1)", factor))
	}
	return &MultiPurgeSampler[V]{
		cfg:    cfg,
		nf:     cfg.NF(),
		factor: factor,
		q:      QApprox(expectedN, cfg.ExceedProb, cfg.NF()),
		src:    src,
		phase:  PhaseExact,
		hist:   histogram.New[V](cfg.SizeModel),
	}
}

// Q returns the current Bernoulli rate.
func (s *MultiPurgeSampler[V]) Q() float64 { return s.q }

// Purges returns the number of overflow purges executed.
func (s *MultiPurgeSampler[V]) Purges() int64 { return s.purges }

// Seen returns the number of elements processed.
func (s *MultiPurgeSampler[V]) Seen() int64 { return s.seen }

// SampleSize returns the current number of sampled elements.
func (s *MultiPurgeSampler[V]) SampleSize() int64 {
	if s.expanded {
		return int64(len(s.bag))
	}
	return s.hist.Size()
}

// Feed processes the next arriving data element.
func (s *MultiPurgeSampler[V]) Feed(v V) { s.FeedN(v, 1) }

// FeedN processes a run of n equal values.
func (s *MultiPurgeSampler[V]) FeedN(v V, n int64) {
	if s.finalized {
		panic("core: MultiPurgeSampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	for n > 0 {
		if s.phase == PhaseExact {
			n = s.feedExact(v, n)
		} else {
			n = s.feedBernoulli(v, n)
		}
	}
}

func (s *MultiPurgeSampler[V]) feedExact(v V, n int64) int64 {
	for n > 0 {
		if s.hist.FootprintAfterInsert(v) > s.cfg.FootprintBytes {
			PurgeBernoulli(s.hist, s.q, s.src)
			s.phase = PhaseBernoulli
			s.shrinkToBound()
			return n
		}
		s.hist.Insert(v, 1)
		s.seen++
		n--
		if n > 0 && s.hist.Count(v) >= 2 {
			s.hist.Insert(v, n)
			s.seen += n
			return 0
		}
	}
	return 0
}

func (s *MultiPurgeSampler[V]) feedBernoulli(v V, n int64) int64 {
	if s.SampleSize()+n < s.nf {
		if m := randx.Binomial(s.src, n, s.q); m > 0 {
			s.ensureExpanded()
			for j := int64(0); j < m; j++ {
				s.bag = append(s.bag, v)
			}
		}
		s.seen += n
		return 0
	}
	for n > 0 {
		s.seen++
		n--
		if randx.Float64(s.src) <= s.q {
			s.ensureExpanded()
			s.bag = append(s.bag, v)
			if int64(len(s.bag)) >= s.nf {
				s.shrinkToBound()
			}
		}
	}
	return 0
}

// shrinkToBound repeatedly thins the sample with ever-smaller rates until
// the size drops below n_F again.
func (s *MultiPurgeSampler[V]) shrinkToBound() {
	for s.SampleSize() >= s.nf {
		newQ := s.q * s.factor
		ratio := newQ / s.q
		if s.expanded {
			kept := s.bag[:0]
			for _, v := range s.bag {
				if randx.Bernoulli(s.src, ratio) {
					kept = append(kept, v)
				}
			}
			s.bag = kept
		} else {
			PurgeBernoulli(s.hist, ratio, s.src)
		}
		s.q = newQ
		s.purges++
	}
}

func (s *MultiPurgeSampler[V]) ensureExpanded() {
	if s.expanded {
		return
	}
	s.bag = s.hist.Expand()
	s.hist = nil
	s.expanded = true
}

// Finalize returns the final (uniform, approximately Bernoulli) sample.
func (s *MultiPurgeSampler[V]) Finalize() (*Sample[V], error) {
	if s.finalized {
		return nil, fmt.Errorf("core: MultiPurgeSampler already finalized")
	}
	s.finalized = true
	var h *histogram.Histogram[V]
	if s.expanded {
		h = histogram.FromBag(s.cfg.SizeModel, s.bag)
		s.bag = nil
	} else {
		h = s.hist
		s.hist = nil
	}
	out := &Sample[V]{
		Hist:       h,
		ParentSize: s.seen,
		Config:     s.cfg,
	}
	if s.phase == PhaseExact {
		out.Kind = Exhaustive
		out.Q = 1
	} else {
		out.Kind = BernoulliKind
		out.Q = s.q
	}
	return out, nil
}

var _ Sampler[int64] = (*MultiPurgeSampler[int64])(nil)
