package core

import (
	"math"
	"testing"

	"samplewh/internal/histogram"
	"samplewh/internal/randx"
)

// buildHist constructs a histogram from (value, count) pairs.
func buildHist(pairs ...int64) *histogram.Histogram[int64] {
	if len(pairs)%2 != 0 {
		panic("buildHist: odd argument count")
	}
	h := histogram.New[int64](histogram.DefaultSizeModel)
	for i := 0; i < len(pairs); i += 2 {
		h.Insert(pairs[i], pairs[i+1])
	}
	return h
}

func TestPurgeBernoulliNoOpAtQ1(t *testing.T) {
	r := randx.New(1)
	h := buildHist(1, 5, 2, 3)
	PurgeBernoulli(h, 1, r)
	if h.Size() != 8 {
		t.Fatalf("q=1 purge changed size to %d", h.Size())
	}
	PurgeBernoulli(h, 1.5, r)
	if h.Size() != 8 {
		t.Fatalf("q>1 purge changed size to %d", h.Size())
	}
}

func TestPurgeBernoulliEmptiesAtQ0(t *testing.T) {
	r := randx.New(2)
	h := buildHist(1, 5, 2, 3)
	PurgeBernoulli(h, 0, r)
	if h.Size() != 0 || h.Distinct() != 0 {
		t.Fatalf("q=0 purge left %v", h)
	}
}

func TestPurgeBernoulliExpectedSize(t *testing.T) {
	r := randx.New(3)
	const trials = 5000
	const q = 0.3
	var total int64
	for i := 0; i < trials; i++ {
		h := buildHist(1, 10, 2, 10, 3, 10, 4, 10)
		PurgeBernoulli(h, q, r)
		total += h.Size()
	}
	got := float64(total) / trials
	want := 40 * q
	// SE = sqrt(40·q(1−q)/trials) ≈ 0.041; 5 sigma.
	if math.Abs(got-want) > 0.25 {
		t.Fatalf("mean purged size = %v, want %v", got, want)
	}
}

func TestPurgeBernoulliPerElementUniform(t *testing.T) {
	// Every element must survive with the same probability regardless of
	// whether it sits in a big or small count.
	r := randx.New(4)
	const trials = 30000
	const q = 0.5
	var bigSurvive, smallSurvive int64
	for i := 0; i < trials; i++ {
		h := buildHist(1, 100, 2, 1)
		PurgeBernoulli(h, q, r)
		bigSurvive += h.Count(1)
		smallSurvive += h.Count(2)
	}
	bigRate := float64(bigSurvive) / (100 * trials)
	smallRate := float64(smallSurvive) / trials
	if math.Abs(bigRate-q) > 0.01 {
		t.Errorf("large-count survival rate = %v, want %v", bigRate, q)
	}
	if math.Abs(smallRate-q) > 0.015 {
		t.Errorf("singleton survival rate = %v, want %v", smallRate, q)
	}
}

func TestPurgeReservoirExactSize(t *testing.T) {
	r := randx.New(5)
	for _, m := range []int64{1, 2, 5, 19, 39} {
		h := buildHist(1, 10, 2, 10, 3, 10, 4, 10)
		PurgeReservoir(h, m, r)
		if h.Size() != m {
			t.Fatalf("purge to %d left %d elements", m, h.Size())
		}
	}
}

func TestPurgeReservoirNoOpWhenSmall(t *testing.T) {
	r := randx.New(6)
	h := buildHist(1, 3, 2, 2)
	PurgeReservoir(h, 5, r)
	if h.Size() != 5 || h.Count(1) != 3 || h.Count(2) != 2 {
		t.Fatalf("no-op purge mutated histogram: %v", h.Entries())
	}
	PurgeReservoir(h, 10, r)
	if h.Size() != 5 {
		t.Fatalf("m>size purge mutated histogram: %v", h.Entries())
	}
}

func TestPurgeReservoirToZero(t *testing.T) {
	r := randx.New(7)
	h := buildHist(1, 3)
	PurgeReservoir(h, 0, r)
	if h.Size() != 0 {
		t.Fatalf("m=0 purge left %d", h.Size())
	}
}

func TestPurgeReservoirNegativePanics(t *testing.T) {
	r := randx.New(8)
	h := buildHist(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("negative m did not panic")
		}
	}()
	PurgeReservoir(h, -1, r)
}

func TestPurgeReservoirPerElementUniform(t *testing.T) {
	// Elements from all entries must be retained with probability m/|S|,
	// independent of entry position or count.
	r := randx.New(9)
	const trials = 30000
	const m = 10
	counts := map[int64]int64{}
	var totalSize int64 = 40
	for i := 0; i < trials; i++ {
		h := buildHist(1, 17, 2, 1, 3, 2, 4, 20)
		PurgeReservoir(h, m, r)
		for _, e := range h.Entries() {
			counts[e.Value] += e.Count
		}
	}
	wantRate := float64(m) / float64(totalSize)
	for _, c := range []struct {
		v, n int64
	}{{1, 17}, {2, 1}, {3, 2}, {4, 20}} {
		got := float64(counts[c.v]) / float64(c.n*trials)
		// Binomial SE per element ≈ sqrt(p(1−p)/(n·trials)).
		se := math.Sqrt(wantRate * (1 - wantRate) / float64(c.n*trials))
		if math.Abs(got-wantRate) > 6*se+0.002 {
			t.Errorf("value %d retention rate = %v, want %v (se %v)", c.v, got, wantRate, se)
		}
	}
}

func TestPurgeReservoirSubsetUniformity(t *testing.T) {
	// Strongest check: purge a 5-element all-distinct histogram to 2 and
	// verify all C(5,2)=10 subsets appear equally often.
	r := randx.New(10)
	const trials = 50000
	counts := map[[2]int64]int64{}
	for i := 0; i < trials; i++ {
		h := buildHist(1, 1, 2, 1, 3, 1, 4, 1, 5, 1)
		PurgeReservoir(h, 2, r)
		es := h.SortedEntries(func(a, b int64) bool { return a < b })
		if len(es) != 2 {
			t.Fatalf("purge produced %d entries", len(es))
		}
		counts[[2]int64{es[0].Value, es[1].Value}]++
	}
	want := float64(trials) / 10
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("subset %v appeared %d times, want ~%.0f", k, c, want)
		}
	}
	if len(counts) != 10 {
		t.Errorf("only %d distinct subsets observed, want 10", len(counts))
	}
}

func TestPurgeReservoirWithDuplicatesMultisetUniformity(t *testing.T) {
	// Population {a,a,b}: SRS of size 2 yields {a,a} w.p. 1/3 and {a,b}
	// w.p. 2/3.
	r := randx.New(11)
	const trials = 60000
	var aa, ab int64
	for i := 0; i < trials; i++ {
		h := buildHist(1, 2, 2, 1)
		PurgeReservoir(h, 2, r)
		switch {
		case h.Count(1) == 2:
			aa++
		case h.Count(1) == 1 && h.Count(2) == 1:
			ab++
		default:
			t.Fatalf("impossible outcome: %v", h.Entries())
		}
	}
	gotAA := float64(aa) / trials
	if math.Abs(gotAA-1.0/3) > 0.01 {
		t.Errorf("P{{a,a}} = %v, want 1/3", gotAA)
	}
	if aa+ab != trials {
		t.Errorf("outcomes do not partition: %d + %d != %d", aa, ab, trials)
	}
}

func TestPurgeDeterministicForSeed(t *testing.T) {
	h1 := buildHist(1, 100, 2, 50, 3, 25)
	h2 := buildHist(1, 100, 2, 50, 3, 25)
	PurgeReservoir(h1, 30, randx.New(99))
	PurgeReservoir(h2, 30, randx.New(99))
	if !h1.Equal(h2) {
		t.Fatal("same seed produced different purge results")
	}
}

func BenchmarkPurgeBernoulli(b *testing.B) {
	r := randx.New(1)
	src := buildHist()
	for v := int64(0); v < 4096; v++ {
		src.Insert(v, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := src.Clone()
		PurgeBernoulli(h, 0.5, r)
	}
}

func BenchmarkPurgeReservoirCompact(b *testing.B) {
	r := randx.New(1)
	src := buildHist()
	for v := int64(0); v < 4096; v++ {
		src.Insert(v, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := src.Clone()
		PurgeReservoir(h, 8192, r)
	}
}

// BenchmarkPurgeExpandThenSample is the ablation baseline for
// purgeReservoir: expand the histogram to a bag, shuffle-select, rebuild.
func BenchmarkPurgeExpandThenSample(b *testing.B) {
	r := randx.New(1)
	src := buildHist()
	for v := int64(0); v < 4096; v++ {
		src.Insert(v, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := src.Clone()
		bag := h.Expand()
		// Partial Fisher-Yates selection of 8192 elements.
		for j := 0; j < 8192; j++ {
			k := j + randx.Intn(r, len(bag)-j)
			bag[j], bag[k] = bag[k], bag[j]
		}
		_ = histogram.FromBag(histogram.DefaultSizeModel, bag[:8192])
	}
}
