package core

import (
	"context"
	"fmt"
	"sync"

	"samplewh/internal/histogram"
	"samplewh/internal/obs"
	"samplewh/internal/randx"
)

// mergeCompatible verifies that two samples were collected under the same
// footprint regime; merging across regimes has no defined semantics.
func mergeCompatible[V comparable](s1, s2 *Sample[V]) error {
	if s1.Config.FootprintBytes != s2.Config.FootprintBytes {
		return fmt.Errorf("core: merge of samples with different footprints (%dB vs %dB)",
			s1.Config.FootprintBytes, s2.Config.FootprintBytes)
	}
	if s1.Config.SizeModel != s2.Config.SizeModel {
		return fmt.Errorf("core: merge of samples with different size models (%+v vs %+v)",
			s1.Config.SizeModel, s2.Config.SizeModel)
	}
	return nil
}

// Merge combines two samples of disjoint partitions into a uniform sample of
// the union, choosing the appropriate procedure by the samples' kinds:
// HBMerge when Bernoulli samples are involved, HRMerge otherwise. Inputs are
// consumed (their histograms may be mutated); Clone first to keep them.
func Merge[V comparable](s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	if s1.Kind == BernoulliKind || s2.Kind == BernoulliKind {
		return HBMerge(s1, s2, src)
	}
	return HRMerge(s1, s2, src)
}

// HBMerge merges two samples produced by Algorithm HB from disjoint
// partitions (paper §4.1, Figure 6):
//
//   - if either sample is exhaustive, its values are simply re-fed (without
//     expansion) into an Algorithm HB sampler whose state is initialized
//     from the other sample;
//   - if either sample is a reservoir sample, HRMerge applies (the other
//     sample is viewed, conditionally on its size, as a simple random
//     sample);
//   - if both are Bernoulli samples, the rates are equalized to the rate
//     q(|D1|+|D2|, p, n_F) by Bernoulli subsampling and the compact
//     histograms are joined; in the unlikely event the join would exceed the
//     footprint bound, the union is cut down to a size-n_F reservoir sample.
//
// The result is a uniform sample of D1 ∪ D2. Inputs are consumed.
func HBMerge[V comparable](s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	if err := mergeCompatible(s1, s2); err != nil {
		return nil, err
	}
	cfg := s1.Config.normalized()
	nf := cfg.NF()

	// Lines 1–4: at least one exhaustive sample.
	if s1.Kind == Exhaustive || s2.Kind == Exhaustive {
		ex, other := s1, s2
		if ex.Kind != Exhaustive {
			ex, other = s2, s1
		} else if other.Kind == Exhaustive && other.Footprint() < ex.Footprint() {
			// Both exhaustive: re-feed the smaller one.
			ex, other = other, ex
		}
		switch other.Kind {
		case Exhaustive, BernoulliKind:
			if other.Kind == BernoulliKind && other.Size() >= nf {
				// A Bernoulli sample that already fills the bound cannot
				// accept further Bernoulli insertions; treat it as a
				// conditional simple random sample and use HRMerge.
				return hrMergeSRS(s1, s2, src)
			}
			hb := resumeHB(other, ex.ParentSize+other.ParentSize, src)
			ex.Hist.Each(func(v V, n int64) { hb.FeedN(v, n) })
			return hb.Finalize()
		case ReservoirKind:
			hr := resumeHR(other, src)
			ex.Hist.Each(func(v V, n int64) { hr.FeedN(v, n) })
			return hr.Finalize()
		default:
			return nil, fmt.Errorf("core: HBMerge with invalid kind %v", other.Kind)
		}
	}

	// Lines 5–7: at least one reservoir sample.
	if s1.Kind == ReservoirKind || s2.Kind == ReservoirKind {
		return hrMergeSRS(s1, s2, src)
	}

	// Lines 8–16: both Bernoulli samples.
	q := QApprox(s1.ParentSize+s2.ParentSize, cfg.ExceedProb, nf)
	if s1.Q > 0 {
		PurgeBernoulli(s1.Hist, q/s1.Q, src)
	}
	if s2.Q > 0 {
		PurgeBernoulli(s2.Hist, q/s2.Q, src)
	}
	if s1.Hist.JoinedFootprint(s2.Hist) < cfg.FootprintBytes {
		s1.Hist.Join(s2.Hist)
		return &Sample[V]{
			Kind:       BernoulliKind,
			Hist:       s1.Hist,
			ParentSize: s1.ParentSize + s2.ParentSize,
			Q:          q,
			Config:     cfg,
		}, nil
	}
	// Low-probability overflow (lines 14–16): reservoir-sample the union of
	// the two Bernoulli samples down to n_F. An SRS of n_F elements from a
	// Bern(q) sample of D1 ∪ D2 is an SRS of n_F elements from D1 ∪ D2.
	PurgeReservoir(s1.Hist, nf, src)
	bag := s1.Hist.Expand()
	bag = absorbIntoReservoir(bag, nf, s1.Hist.Size(), s2.Hist, src)
	return &Sample[V]{
		Kind:       ReservoirKind,
		Hist:       histogram.FromBag(cfg.SizeModel, bag),
		ParentSize: s1.ParentSize + s2.ParentSize,
		Config:     cfg,
	}, nil
}

// HRMerge merges two samples produced by Algorithm HR from disjoint
// partitions (paper §4.2, Figure 8):
//
//   - if either sample is exhaustive, its values are re-fed (without
//     expansion) into an Algorithm HR sampler initialized from the other
//     sample;
//   - otherwise both samples are (viewed as) simple random samples, and a
//     merged simple random sample of size k = min(|S1|, |S2|) is formed by
//     drawing L from the hypergeometric distribution of equation (2),
//     reservoir-subsampling S1 to L and S2 to k−L elements, and joining
//     (Theorem 1 asserts uniformity of the result).
//
// The result is a uniform sample of D1 ∪ D2. Inputs are consumed.
func HRMerge[V comparable](s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	if err := mergeCompatible(s1, s2); err != nil {
		return nil, err
	}
	// Lines 1–4: at least one exhaustive sample.
	if s1.Kind == Exhaustive || s2.Kind == Exhaustive {
		ex, other := s1, s2
		if ex.Kind != Exhaustive {
			ex, other = s2, s1
		} else if other.Kind == Exhaustive && other.Footprint() < ex.Footprint() {
			ex, other = other, ex
		}
		hr := resumeHR(other, src)
		ex.Hist.Each(func(v V, n int64) { hr.FeedN(v, n) })
		return hr.Finalize()
	}
	// Lines 5–12: both are (conditionally) simple random samples.
	return hrMergeSRS(s1, s2, src)
}

// MergeToSize merges two non-exhaustive samples of disjoint partitions into
// a simple random sample of exactly k elements of the union, for any
// k ≤ min(|S1|, |S2|). The paper's proof of Theorem 1 "actually establishes
// the correctness of our process for any merged sample size
// k ∈ {1, ..., |S1| ∧ |S2|}"; HRMerge uses the maximum, but a smaller k lets
// the warehouse cap the merged sample below the inputs' sizes (e.g. for
// bandwidth-limited shipping of merged samples). Inputs are consumed.
func MergeToSize[V comparable](s1, s2 *Sample[V], k int64, src randx.Source) (*Sample[V], error) {
	if err := mergeCompatible(s1, s2); err != nil {
		return nil, err
	}
	if k < 0 {
		return nil, fmt.Errorf("core: MergeToSize k = %d < 0", k)
	}
	if s1.Kind == Exhaustive || s2.Kind == Exhaustive {
		m, err := HRMerge(s1, s2, src)
		if err != nil {
			return nil, err
		}
		if m.Kind == Exhaustive {
			// An exact union: cut it down to an SRS of size k directly.
			if k > m.Size() {
				return nil, fmt.Errorf("core: MergeToSize k = %d exceeds union size %d", k, m.Size())
			}
			PurgeReservoir(m.Hist, k, src)
			m.Kind = ReservoirKind
			m.Q = 0
			return m, nil
		}
		if k > m.Size() {
			return nil, fmt.Errorf("core: MergeToSize k = %d exceeds merged size %d", k, m.Size())
		}
		PurgeReservoir(m.Hist, k, src)
		return m, nil
	}
	min := s1.Size()
	if s2.Size() < min {
		min = s2.Size()
	}
	if k < 0 || k > min {
		return nil, fmt.Errorf("core: MergeToSize k = %d outside [0, min(|S1|,|S2|) = %d]", k, min)
	}
	return hrMergeSRSK(s1, s2, k, src)
}

// hrMergeSRS implements lines 5–12 of Figure 8 for two non-exhaustive
// samples, each viewed as a simple random sample of its realized size.
func hrMergeSRS[V comparable](s1, s2 *Sample[V], src randx.Source) (*Sample[V], error) {
	k := s1.Size()
	if s2.Size() < k {
		k = s2.Size()
	}
	return hrMergeSRSK(s1, s2, k, src)
}

// hrMergeSRSK is hrMergeSRS generalized to any merged size k ≤ min sizes.
func hrMergeSRSK[V comparable](s1, s2 *Sample[V], k int64, src randx.Source) (*Sample[V], error) {
	cfg := s1.Config.normalized()
	out := &Sample[V]{
		Kind:       ReservoirKind,
		ParentSize: s1.ParentSize + s2.ParentSize,
		Config:     cfg,
	}
	if k == 0 {
		// Degenerate: one side sampled nothing; the only uniform sample we
		// can certify is the empty one.
		out.Hist = histogram.New[V](cfg.SizeModel)
		return out, nil
	}
	// L ~ Hypergeometric(|D1|, |D2|, k), paper equation (2).
	l := randx.Hypergeometric(src, s1.ParentSize, s2.ParentSize, k)
	PurgeReservoir(s1.Hist, l, src)
	PurgeReservoir(s2.Hist, k-l, src)
	s1.Hist.Join(s2.Hist)
	out.Hist = s1.Hist
	return out, nil
}

// resumeHB builds an Algorithm HB sampler whose state continues from a
// previously finalized sample, as HBMerge line 3 requires ("Algorithm HB is
// appropriately initialized to be in phase 1, 2, or 3").
func resumeHB[V comparable](s *Sample[V], expectedN int64, src randx.Source) *HB[V] {
	cfg := s.Config.normalized()
	hb := &HB[V]{
		cfg:       cfg,
		nf:        cfg.NF(),
		expectedN: expectedN,
		src:       src,
		hist:      s.Hist,
		seen:      s.ParentSize,
	}
	switch s.Kind {
	case Exhaustive:
		hb.phase = PhaseExact
		hb.q = QApprox(expectedN, cfg.ExceedProb, cfg.NF())
	case BernoulliKind:
		hb.phase = PhaseBernoulli
		hb.q = s.Q
	case ReservoirKind:
		k := s.Size()
		if k < 1 {
			k = 1 // degenerate; nothing will ever be inserted anyway
		}
		hb.enterReservoir(k)
	}
	return hb
}

// resumeHR builds an Algorithm HR sampler whose state continues from a
// previously finalized sample (HRMerge line 3). Non-exhaustive samples enter
// reservoir mode with capacity equal to their realized size, so the merged
// sample size matches HRMerge's k = min(...) semantics when one input is
// exhaustive: the reservoir side's size is preserved.
func resumeHR[V comparable](s *Sample[V], src randx.Source) *HR[V] {
	cfg := s.Config.normalized()
	hr := &HR[V]{
		cfg:   cfg,
		nf:    cfg.NF(),
		src:   src,
		hist:  s.Hist,
		seen:  s.ParentSize,
		phase: PhaseExact,
	}
	if s.Kind != Exhaustive {
		k := s.Size()
		if k < 1 {
			k = 1
		}
		hr.purged = true // the sample is already a bounded SRS
		hr.enterReservoir(k)
	}
	return hr
}

// absorbIntoReservoir streams the elements of h into an existing reservoir
// bag that currently holds a simple random sample of the first t0 stream
// elements, maintaining capacity k. It returns the updated bag. This is the
// "stream in the values from S2" step of HBMerge lines 15–16, done per
// (value, count) pair without expanding h.
func absorbIntoReservoir[V comparable](bag []V, k, t0 int64, h *histogram.Histogram[V], src randx.Source) []V {
	t := t0
	var sk *randx.Skipper
	var next int64
	h.Each(func(v V, cnt int64) {
		// Warm-up: fill the reservoir before skips apply.
		for cnt > 0 && int64(len(bag)) < k {
			bag = append(bag, v)
			t++
			cnt--
		}
		if cnt == 0 {
			return
		}
		if sk == nil {
			sk = randx.NewSkipper(src, k)
			next = t + 1 + sk.Skip(t)
		}
		end := t + cnt
		for next <= end {
			bag[randx.Intn(src, len(bag))] = v
			next = next + 1 + sk.Skip(next)
		}
		t = end
	})
	return bag
}

// MergeFunc is the signature shared by Merge, HBMerge and HRMerge.
type MergeFunc[V comparable] func(s1, s2 *Sample[V], src randx.Source) (*Sample[V], error)

// MergeSerial folds the samples left-to-right with repeated pairwise merges:
// ((S1 ⊕ S2) ⊕ S3) ⊕ ... — the "sequence of pairwise merges (serially)" of
// the paper's experiments. Inputs are consumed. It returns an error on an
// empty input.
func MergeSerial[V comparable](samples []*Sample[V], merge MergeFunc[V], src randx.Source) (*Sample[V], error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: MergeSerial with no samples")
	}
	acc := samples[0]
	for _, s := range samples[1:] {
		var err error
		acc, err = merge(acc, s, src)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MergeTree combines the samples with a balanced binary tree of pairwise
// merges — the shape the paper's §4.2 alias-table discussion assumes (all
// merges at one level see identically-sized inputs). Inputs are consumed.
//
// Randomness is assigned per tree node: when src is a *randx.RNG, every pair
// of every level draws from an independent stream split off src in tree
// position order (level by level, left to right). The assignment depends only
// on the tree shape — never on execution order — so MergeTreeParallel
// produces byte-identical output for the same seed. Foreign Source
// implementations cannot be split; all merges then share src sequentially.
func MergeTree[V comparable](samples []*Sample[V], merge MergeFunc[V], src randx.Source) (*Sample[V], error) {
	return mergeTree(context.Background(), samples, merge, src, 1)
}

// MergeTreeParallel is MergeTree with every level's pairwise merges executed
// concurrently (up to parallelism goroutines; 0 selects one per pair). The
// merges within a level are independent — the parallelism the paper's
// architecture calls for on the merge path as well as the sampling path.
// Because randomness is pre-assigned per tree position (see MergeTree), the
// result is byte-identical to the sequential MergeTree for the same seed,
// regardless of parallelism or scheduling. A foreign (non-*randx.RNG) source
// cannot be split across goroutines; the tree then runs sequentially on the
// shared stream. Inputs are consumed.
func MergeTreeParallel[V comparable](samples []*Sample[V], merge MergeFunc[V], src randx.Source, parallelism int) (*Sample[V], error) {
	return mergeTree(context.Background(), samples, merge, src, parallelism)
}

// MergeTreeParallelContext is MergeTreeParallel recording one trace span per
// tree level when ctx carries an obs span: each level span notes its index,
// pair count and effective worker count, so a request's explain output shows
// where merge time concentrates (the bottom level does half the work). The
// merged result is byte-identical to MergeTreeParallel — tracing never
// touches the randomness assignment. An untraced ctx costs one nil check
// per level.
func MergeTreeParallelContext[V comparable](ctx context.Context, samples []*Sample[V], merge MergeFunc[V], src randx.Source, parallelism int) (*Sample[V], error) {
	return mergeTree(ctx, samples, merge, src, parallelism)
}

// mergeTree is the shared balanced-tree executor behind MergeTree and
// MergeTreeParallel.
func mergeTree[V comparable](ctx context.Context, samples []*Sample[V], merge MergeFunc[V], src randx.Source, parallelism int) (*Sample[V], error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: MergeTree with no samples")
	}
	rng, splittable := src.(*randx.RNG)
	if !splittable {
		// A shared foreign stream admits no deterministic partition across
		// goroutines; run the tree sequentially on it.
		parallelism = 1
	}
	parent := obs.SpanFromContext(ctx)
	level := samples
	for lvl := 0; len(level) > 1; lvl++ {
		pairs := len(level) / 2
		next := make([]*Sample[V], (len(level)+1)/2)
		errs := make([]error, pairs)
		// Seed-per-node: one stream per pair, split in tree position order so
		// sequential and concurrent execution consume identical randomness.
		srcs := make([]randx.Source, pairs)
		for i := range srcs {
			if splittable {
				srcs[i] = rng.Split()
			} else {
				srcs[i] = src
			}
		}
		workers := parallelismOrPairs(parallelism, pairs)
		sp := parent.Start("merge_level")
		sp.SetValue("level", int64(lvl))
		sp.SetValue("pairs", int64(pairs))
		sp.SetValue("workers", int64(workers))
		if workers == 1 {
			for i := 0; i < pairs; i++ {
				next[i], errs[i] = merge(level[2*i], level[2*i+1], srcs[i])
			}
		} else {
			sem := make(chan struct{}, workers)
			var wg sync.WaitGroup
			for i := 0; i < pairs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					next[i], errs[i] = merge(level[2*i], level[2*i+1], srcs[i])
				}(i)
			}
			wg.Wait()
		}
		sp.End()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if len(level)%2 == 1 {
			next[pairs] = level[len(level)-1]
		}
		level = next
	}
	return level[0], nil
}

// parallelismOrPairs resolves the concurrency cap (at least 1: callers only
// reach here with pairs >= 1).
func parallelismOrPairs(parallelism, pairs int) int {
	if parallelism <= 0 || parallelism > pairs {
		return pairs
	}
	return parallelism
}
