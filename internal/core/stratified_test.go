package core

import (
	"math"
	"testing"

	"samplewh/internal/randx"
)

func TestNewStratifiedValidation(t *testing.T) {
	r := randx.New(1)
	cfg := smallCfg(64)
	s1 := collectHRt(t, cfg, 0, 1000, r.Split())
	if _, err := NewStratified[int64](); err == nil {
		t.Error("empty strata accepted")
	}
	if _, err := NewStratified(s1, nil); err == nil {
		t.Error("nil stratum accepted")
	}
	s2 := collectHRt(t, smallCfg(128), 1000, 2000, r.Split())
	if _, err := NewStratified(s1, s2); err == nil {
		t.Error("incompatible strata accepted")
	}
}

// collectHRt is a local helper mirroring merge_test's collectHR.
func collectHRt(t *testing.T, cfg Config, lo, hi int64, src randx.Source) *Sample[int64] {
	t.Helper()
	hr := NewHR[int64](cfg, src)
	for v := lo; v < hi; v++ {
		hr.Feed(v)
	}
	s, err := hr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStratifiedAccessors(t *testing.T) {
	r := randx.New(2)
	cfg := smallCfg(32)
	s1 := collectHRt(t, cfg, 0, 1000, r.Split())
	s2 := collectHRt(t, cfg, 1000, 4000, r.Split())
	st, err := NewStratified(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumStrata() != 2 {
		t.Fatalf("NumStrata = %d", st.NumStrata())
	}
	if st.ParentSize() != 4000 {
		t.Fatalf("ParentSize = %d", st.ParentSize())
	}
	if st.SampleSize() != 64 {
		t.Fatalf("SampleSize = %d", st.SampleSize())
	}
}

func TestStratifiedCollapse(t *testing.T) {
	r := randx.New(3)
	cfg := smallCfg(32)
	s1 := collectHRt(t, cfg, 0, 1000, r.Split())
	s2 := collectHRt(t, cfg, 1000, 2000, r.Split())
	st, err := NewStratified(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.Collapse(HRMerge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != 2000 || m.Size() != 32 {
		t.Fatalf("collapsed: %v", m)
	}
}

func TestUnionBernoulliEqualRates(t *testing.T) {
	r := randx.New(4)
	cfg := smallCfg(1 << 20)
	var samples []*Sample[int64]
	for p := int64(0); p < 4; p++ {
		sb := NewSB[int64](cfg, 0.1, r.Split())
		for v := p * 10000; v < (p+1)*10000; v++ {
			sb.Feed(v)
		}
		s, _ := sb.Finalize()
		samples = append(samples, s)
	}
	u, err := UnionBernoulli(samples, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != BernoulliKind || u.Q != 0.1 || u.ParentSize != 40000 {
		t.Fatalf("union: %v", u)
	}
	want := 0.1 * 40000
	if math.Abs(float64(u.Size())-want) > 6*math.Sqrt(want) {
		t.Fatalf("union size %d, want ~%.0f", u.Size(), want)
	}
}

func TestUnionBernoulliMixedRatesEqualized(t *testing.T) {
	r := randx.New(5)
	cfg := smallCfg(1 << 20)
	mk := func(q float64, lo, hi int64) *Sample[int64] {
		sb := NewSB[int64](cfg, q, r.Split())
		for v := lo; v < hi; v++ {
			sb.Feed(v)
		}
		s, _ := sb.Finalize()
		return s
	}
	u, err := UnionBernoulli([]*Sample[int64]{
		mk(0.2, 0, 20000),
		mk(0.05, 20000, 40000),
		mk(0.1, 40000, 60000),
	}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if u.Q != 0.05 {
		t.Fatalf("union q = %v, want 0.05", u.Q)
	}
	want := 0.05 * 60000
	if math.Abs(float64(u.Size())-want) > 6*math.Sqrt(want) {
		t.Fatalf("union size %d, want ~%.0f", u.Size(), want)
	}
}

func TestUnionBernoulliWithExhaustive(t *testing.T) {
	r := randx.New(6)
	cfg := smallCfg(1 << 20)
	sb := NewSB[int64](cfg, 0.5, r.Split())
	for v := int64(0); v < 10000; v++ {
		sb.Feed(v)
	}
	s1, _ := sb.Finalize()
	s2 := collectHRt(t, cfg, 10000, 10100, r.Split()) // exhaustive (small)
	if s2.Kind != Exhaustive {
		t.Fatal("setup: not exhaustive")
	}
	u, err := UnionBernoulli([]*Sample[int64]{s1, s2}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if u.Q != 0.5 || u.ParentSize != 10100 {
		t.Fatalf("union: %v", u)
	}
}

func TestUnionBernoulliAllExhaustiveIsExhaustive(t *testing.T) {
	r := randx.New(7)
	cfg := smallCfg(1 << 20)
	s1 := collectHRt(t, cfg, 0, 100, r.Split())
	s2 := collectHRt(t, cfg, 100, 300, r.Split())
	u, err := UnionBernoulli([]*Sample[int64]{s1, s2}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != Exhaustive || u.Size() != 300 {
		t.Fatalf("union: %v", u)
	}
}

func TestUnionBernoulliRejectsReservoir(t *testing.T) {
	r := randx.New(8)
	cfg := smallCfg(32)
	s1 := collectHRt(t, cfg, 0, 10000, r.Split()) // reservoir
	if _, err := UnionBernoulli([]*Sample[int64]{s1}, r.Split()); err == nil {
		t.Fatal("reservoir sample accepted")
	}
	if _, err := UnionBernoulli[int64](nil, r.Split()); err == nil {
		t.Fatal("empty slice accepted")
	}
}

func TestSymmetricMergerMatchesHRMergeStatistically(t *testing.T) {
	r := randx.New(9)
	cfg := smallCfg(32)
	const n1, n2 = 1000, 1000
	const trials = 3000
	counts := make([]int64, n1+n2)
	m := NewSymmetricMerger[int64]()
	for trial := 0; trial < trials; trial++ {
		s1 := collectHRt(t, cfg, 0, n1, r.Split())
		s2 := collectHRt(t, cfg, n1, n1+n2, r.Split())
		out, err := m.Merge(s1, s2, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if out.Size() != 32 {
			t.Fatalf("size = %d", out.Size())
		}
		out.Hist.Each(func(v int64, c int64) { counts[v]++ })
	}
	// All trials share the same parameter triple: exactly one cached table.
	if m.CachedTables() != 1 {
		t.Fatalf("cached tables = %d, want 1", m.CachedTables())
	}
	want := float64(trials) * 32 / (n1 + n2)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%.1f", v, c, want)
		}
	}
}

func TestSymmetricMergerTreeReusesTablesPerLevel(t *testing.T) {
	r := randx.New(10)
	cfg := smallCfg(32)
	const parts = 16
	const per = 2048
	var samples []*Sample[int64]
	for i := int64(0); i < parts; i++ {
		samples = append(samples, collectHRt(t, cfg, i*per, (i+1)*per, r.Split()))
	}
	m := NewSymmetricMerger[int64]()
	out, err := MergeTree(samples, m.Merge, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if out.ParentSize != parts*per || out.Size() != 32 {
		t.Fatalf("merged: %v", out)
	}
	// A balanced tree over equal partitions needs log2(parts) distinct
	// parameter triples.
	if m.CachedTables() != 4 {
		t.Fatalf("cached tables = %d, want 4 (log2 of %d)", m.CachedTables(), parts)
	}
}

func TestSymmetricMergerExhaustiveDelegation(t *testing.T) {
	r := randx.New(11)
	cfg := smallCfg(1024)
	s1 := collectHRt(t, cfg, 0, 100, r.Split())
	s2 := collectHRt(t, cfg, 100, 200, r.Split())
	m := NewSymmetricMerger[int64]()
	out, err := m.Merge(s1, s2, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != Exhaustive || out.Size() != 200 {
		t.Fatalf("merged: %v", out)
	}
	if m.CachedTables() != 0 {
		t.Fatal("exhaustive merge built an alias table")
	}
}
