package core

import (
	"fmt"

	"samplewh/internal/histogram"
	"samplewh/internal/obs"
	"samplewh/internal/randx"
)

// Phase identifies the internal state of a hybrid sampler.
type Phase uint8

const (
	// PhaseExact: the sample is the exact compact histogram of everything
	// seen (phase 1 in the paper's Figures 2 and 7).
	PhaseExact Phase = iota + 1
	// PhaseBernoulli: Algorithm HB is Bernoulli-sampling at rate q (phase 2
	// of Figure 2).
	PhaseBernoulli
	// PhaseReservoir: reservoir mode (phase 3 of Figure 2; phase 2 of
	// Figure 7).
	PhaseReservoir
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseExact:
		return "exact"
	case PhaseBernoulli:
		return "bernoulli"
	case PhaseReservoir:
		return "reservoir"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// HB implements Algorithm HB, the paper's hybrid Bernoulli sampler
// (§4.1, Figure 2). It attempts to keep an exact compact histogram of the
// partition; if the footprint would exceed F it switches to Bernoulli
// sampling at the rate q = q(N, p, n_F) of equation (1), chosen so that with
// probability at least 1−p the sample never exceeds n_F values; in the
// unlikely event that it does, it falls back to reservoir sampling with
// reservoir size n_F. The footprint therefore never exceeds F, and the final
// sample is uniform: an exact histogram, an (essentially) Bernoulli sample,
// or a simple random sample of size n_F.
//
// The expected partition size N must be supplied up front — the paper's one
// requirement for Algorithm HB (§4.3). If fewer elements actually arrive the
// sample is smaller than intended (q was set too low) but remains uniform;
// if more arrive, the reservoir fallback still bounds the footprint.
type HB[V comparable] struct {
	cfg       Config
	nf        int64
	expectedN int64
	q         float64
	src       randx.Source

	phase     Phase
	hist      *histogram.Histogram[V] // compact form: exact in phase 1, purged-unexpanded later
	bag       []V                     // expanded form, once a phase-2/3 insertion occurs
	expanded  bool
	seen      int64 // i: number of elements processed
	next      int64 // n: 1-based index of next reservoir insertion (phase 3)
	rk        int64 // reservoir capacity in phase 3 (n_F, except when a merge seeds the sampler from a smaller reservoir sample)
	sk        *randx.Skipper
	finalized bool
	o         samplerObs
}

// Instrument routes the sampler's metrics and events into reg, labelled
// with the given partition ID (empty is fine). Call it before the first
// Feed; a nil registry leaves the sampler uninstrumented.
func (s *HB[V]) Instrument(reg *obs.Registry, partition string) {
	s.o = newSamplerObs(reg, "core.hb", partition)
}

// NewHB returns an Algorithm HB sampler for a partition of expected size
// expectedN. It panics on invalid configuration or expectedN < 1.
func NewHB[V comparable](cfg Config, expectedN int64, src randx.Source) *HB[V] {
	cfg = cfg.normalized()
	if expectedN < 1 {
		panic(fmt.Sprintf("core: NewHB with expectedN = %d < 1", expectedN))
	}
	return &HB[V]{
		cfg:       cfg,
		nf:        cfg.NF(),
		expectedN: expectedN,
		q:         QApprox(expectedN, cfg.ExceedProb, cfg.NF()),
		src:       src,
		phase:     PhaseExact,
		hist:      histogram.New[V](cfg.SizeModel),
	}
}

// Phase returns the sampler's current phase.
func (s *HB[V]) Phase() Phase { return s.phase }

// Q returns the phase-2 Bernoulli rate chosen from equation (1).
func (s *HB[V]) Q() float64 { return s.q }

// NF returns the sample-size bound n_F.
func (s *HB[V]) NF() int64 { return s.nf }

// Seen returns the number of elements processed.
func (s *HB[V]) Seen() int64 { return s.seen }

// SampleSize returns the current number of sampled data elements.
func (s *HB[V]) SampleSize() int64 {
	if s.expanded {
		return int64(len(s.bag))
	}
	return s.hist.Size()
}

// CurrentFootprint returns the byte footprint of the in-progress sample
// (compact histogram bytes, or bag values at ValueBytes each once expanded).
// Algorithm HB guarantees it never exceeds FootprintBytes.
func (s *HB[V]) CurrentFootprint() int64 {
	if s.expanded {
		return int64(len(s.bag)) * s.cfg.SizeModel.ValueBytes
	}
	return s.hist.Footprint()
}

// Feed processes the next arriving data element (Figure 2 executed once).
func (s *HB[V]) Feed(v V) { s.FeedN(v, 1) }

// FeedN processes a run of n equal values. It is statistically identical to
// n Feed calls but uses binomial and skip shortcuts away from the phase
// boundaries, which is what makes merge-by-refeeding cheap (no expansion of
// compact samples, paper Figure 6 line 3).
func (s *HB[V]) FeedN(v V, n int64) {
	if s.finalized {
		panic("core: HB sampler fed after Finalize")
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FeedN with n = %d < 1", n))
	}
	s.o.countItems(n)
	for n > 0 {
		switch s.phase {
		case PhaseExact:
			n = s.feedExact(v, n)
		case PhaseBernoulli:
			n = s.feedBernoulli(v, n)
		case PhaseReservoir:
			n = s.feedReservoir(v, n)
		}
	}
}

// feedExact runs phase 1 until the run is exhausted or a phase transition
// occurs; it returns the number of unprocessed elements of the run.
func (s *HB[V]) feedExact(v V, n int64) int64 {
	for n > 0 {
		// Leave phase 1 BEFORE an insert could push the footprint past F —
		// this is what makes the a priori bound exact even when F is not
		// aligned to the representation's byte increments.
		if s.hist.FootprintAfterInsert(v) > s.cfg.FootprintBytes {
			s.leaveExact()
			return n
		}
		s.hist.Insert(v, 1)
		s.seen++
		n--
		// The footprint only changes when a value is new or turns from
		// singleton into pair; once this value's count is >= 2, the rest of
		// the run cannot trigger a transition and can be inserted at once.
		if n > 0 && s.hist.Count(v) >= 2 {
			s.hist.Insert(v, n)
			s.seen += n
			return 0
		}
	}
	return 0
}

// leaveExact performs the phase-1 exit of Figure 2 (lines 3–10): take the
// Bernoulli subsample that phase 2 would need; if even that is too large,
// reservoir-subsample to n_F and enter phase 3.
func (s *HB[V]) leaveExact() {
	before := s.hist.Size()
	PurgeBernoulli(s.hist, s.q, s.src)
	s.o.purge("bernoulli", before, s.hist.Size(), s.seen)
	if s.hist.Size() < s.nf {
		s.phase = PhaseBernoulli
		s.o.transition(PhaseExact, PhaseBernoulli, s.seen, s.hist.Size(), s.CurrentFootprint())
		return
	}
	before = s.hist.Size()
	PurgeReservoir(s.hist, s.nf, s.src)
	s.o.purge("reservoir", before, s.hist.Size(), s.seen)
	s.enterReservoir(s.nf)
	s.o.transition(PhaseExact, PhaseReservoir, s.seen, s.SampleSize(), s.CurrentFootprint())
}

// enterReservoir switches to phase 3 with reservoir capacity k and schedules
// the next insertion.
func (s *HB[V]) enterReservoir(k int64) {
	s.phase = PhaseReservoir
	s.rk = k
	s.sk = randx.NewSkipper(s.src, k)
	s.next = s.seen + 1 + s.sk.Skip(s.seen)
}

// feedBernoulli runs phase 2 (Figure 2 lines 12–20) over a run of n equal
// values, returning the number left unprocessed after a phase transition.
func (s *HB[V]) feedBernoulli(v V, n int64) int64 {
	// Fast path: if even accepting every element cannot reach n_F, a single
	// binomial draw is exact and no transition can occur mid-run.
	if s.SampleSize()+n < s.nf {
		if m := randx.Binomial(s.src, n, s.q); m > 0 {
			s.ensureExpanded()
			for j := int64(0); j < m; j++ {
				s.bag = append(s.bag, v)
			}
			s.o.accepts.Add(m)
		}
		s.seen += n
		return 0
	}
	// Boundary path: element-by-element, watching for the n_F transition.
	for n > 0 {
		s.seen++
		n--
		if randx.Float64(s.src) <= s.q {
			s.ensureExpanded()
			s.bag = append(s.bag, v)
			s.o.accepts.Inc()
			if int64(len(s.bag)) >= s.nf {
				s.enterReservoir(s.nf)
				s.o.transition(PhaseBernoulli, PhaseReservoir, s.seen, s.SampleSize(), s.CurrentFootprint())
				return n
			}
		}
	}
	return 0
}

// feedReservoir runs phase 3 (Figure 2 lines 21–27) over a run of n equal
// values using skips; it always consumes the full run.
func (s *HB[V]) feedReservoir(v V, n int64) int64 {
	end := s.seen + n
	for s.next <= end {
		s.ensureExpanded()
		// removeRandomVictim + insert == overwrite a uniform slot.
		s.bag[randx.Intn(s.src, len(s.bag))] = v
		s.o.inserts.Inc()
		s.next = s.next + 1 + s.sk.Skip(s.next)
	}
	s.seen = end
	return 0
}

// ensureExpanded lazily converts the purged compact sample into a bag of
// values at the first phase-2/3 insertion (Figure 2 lines 14–15 and 23).
func (s *HB[V]) ensureExpanded() {
	if s.expanded {
		return
	}
	s.bag = s.hist.Expand()
	s.hist = nil
	s.expanded = true
}

// Finalize converts the sample back to compact histogram form and returns
// it. Depending on the terminating phase the sample is an exact histogram of
// the partition, a Bernoulli(q) sample, or a reservoir sample of size n_F.
func (s *HB[V]) Finalize() (*Sample[V], error) {
	if s.finalized {
		return nil, fmt.Errorf("core: HB sampler already finalized")
	}
	s.finalized = true
	var h *histogram.Histogram[V]
	if s.expanded {
		h = histogram.FromBag(s.cfg.SizeModel, s.bag)
		s.bag = nil
	} else {
		h = s.hist
		s.hist = nil
	}
	out := &Sample[V]{
		Hist:       h,
		ParentSize: s.seen,
		Config:     s.cfg,
	}
	switch s.phase {
	case PhaseExact:
		out.Kind = Exhaustive
		out.Q = 1
	case PhaseBernoulli:
		out.Kind = BernoulliKind
		out.Q = s.q
	case PhaseReservoir:
		out.Kind = ReservoirKind
	}
	s.o.finalize(out.Kind, s.seen, out.Size(), out.Footprint())
	return out, nil
}

var _ Sampler[int64] = (*HB[int64])(nil)
