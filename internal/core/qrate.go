package core

import (
	"fmt"
	"math"

	"samplewh/internal/randx"
)

// QApprox returns the Bernoulli sampling rate q(N, p, nF) from the paper's
// equation (1): the closed-form normal approximation to the largest q such
// that a Bern(q) sample of a population of size N exceeds nF values with
// probability at most p,
//
//	q ≈ [N(2·nF + z²) − z·sqrt(N(N·z² + 4·N·nF − 4·nF²))] / [2N(N + z²)],
//
// where z = z_p is the (1−p)-quantile of the standard normal distribution.
//
// The approximation is derived for the "usual case" where N is large, nF/N
// is not vanishingly small, and p ≤ 0.5; Figure 5 of the paper (and our
// reproduction) shows its relative error stays below 3%.
//
// When nF >= N the whole population fits and QApprox returns 1.
func QApprox(n int64, p float64, nf int64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("core: QApprox with N = %d <= 0", n))
	}
	if nf <= 0 {
		panic(fmt.Sprintf("core: QApprox with nF = %d <= 0", nf))
	}
	if p <= 0 || p > 0.5 {
		panic(fmt.Sprintf("core: QApprox with p = %v outside (0, 0.5]", p))
	}
	if nf >= n {
		return 1
	}
	fn := float64(n)
	fnf := float64(nf)
	z := randx.NormalQuantile(1 - p)
	z2 := z * z
	disc := fn * (fn*z2 + 4*fn*fnf - 4*fnf*fnf)
	q := (fn*(2*fnf+z2) - z*math.Sqrt(disc)) / (2 * fn * (fn + z2))
	// Clamp against floating-point excursions at the boundaries.
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return q
}

// QExact returns the exact solution q of f(q) = p where
//
//	f(q) = P{Bin(N, q) > nF} = Σ_{j=nF+1}^{N} C(N,j) q^j (1−q)^{N−j},
//
// computed by bisection over the monotone binomial tail (evaluated through
// the regularized incomplete beta function). This is the ground truth that
// Figure 5 measures the equation-(1) approximation against.
//
// The result is accurate to within tol in q (absolute). When nF >= N the
// tail is identically 0 < p and QExact returns 1.
func QExact(n int64, p float64, nf int64, tol float64) float64 {
	if n <= 0 || nf <= 0 {
		panic(fmt.Sprintf("core: QExact with N = %d, nF = %d; both must be > 0", n, nf))
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("core: QExact with p = %v outside (0, 1)", p))
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if nf >= n {
		return 1
	}
	f := func(q float64) float64 { return randx.BinomialTail(n, nf, q) }
	// f is increasing in q with f(0) = 0 and f(1) = 1, so a root of
	// f(q) − p exists in (0, 1).
	lo, hi := 0.0, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if f(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// QApproxRelError returns the relative error |QApprox − QExact| / QExact for
// the given parameters: the quantity plotted in the paper's Figure 5.
func QApproxRelError(n int64, p float64, nf int64) float64 {
	exact := QExact(n, p, nf, 1e-13)
	approx := QApprox(n, p, nf)
	if exact == 0 {
		return 0
	}
	return math.Abs(approx-exact) / exact
}
