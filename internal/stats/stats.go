// Package stats provides the statistical testing substrate used to audit the
// sampling algorithms: descriptive statistics, the regularized incomplete
// gamma function, chi-square goodness-of-fit tests (used to verify that HB,
// HR and the merge procedures are uniform and that concise sampling is not),
// and a two-sample Kolmogorov–Smirnov test.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float64 slice.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n−1 denominator)
	StdDev   float64
	Min      float64
	Max      float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(len(xs)-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GammaP returns the regularized lower incomplete gamma function P(a, x),
// the CDF of a Gamma(a, 1) variable at x. It uses the series expansion for
// x < a+1 and the continued fraction otherwise (both from standard numerical
// practice), accurate to roughly 1e-12.
func GammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: GammaP domain error: a=%v x=%v", a, x))
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQCF(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) float64 {
	const maxIter = 1000
	const eps = 1e-15
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQCF evaluates Q(a,x) = 1 − P(a,x) by the Lentz continued fraction.
func gammaQCF(a, x float64) float64 {
	const maxIter = 1000
	const eps = 1e-15
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P{X <= x} for a chi-square variable with df degrees
// of freedom.
func ChiSquareCDF(x float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: ChiSquareCDF with df = %d < 1", df))
	}
	if x <= 0 {
		return 0
	}
	return GammaP(float64(df)/2, x/2)
}

// ChiSquareResult reports a goodness-of-fit test.
type ChiSquareResult struct {
	Stat   float64 // the X² statistic
	DF     int     // degrees of freedom
	PValue float64 // P{X² >= Stat} under the null
}

// Reject reports whether the null hypothesis is rejected at level alpha.
func (r ChiSquareResult) Reject(alpha float64) bool { return r.PValue < alpha }

// String renders the result.
func (r ChiSquareResult) String() string {
	return fmt.Sprintf("chi2=%.4f df=%d p=%.6g", r.Stat, r.DF, r.PValue)
}

// ChiSquareGOF tests observed counts against expected counts (same length,
// expected all positive). ddof extra degrees of freedom are subtracted
// beyond the usual len−1 (for estimated parameters). It returns an error if
// the inputs are malformed or if any expected cell is below 1 (too sparse
// for the asymptotic test).
func ChiSquareGOF(observed []int64, expected []float64, ddof int) (ChiSquareResult, error) {
	var r ChiSquareResult
	if len(observed) != len(expected) {
		return r, fmt.Errorf("stats: observed has %d cells, expected has %d",
			len(observed), len(expected))
	}
	if len(observed) < 2 {
		return r, fmt.Errorf("stats: chi-square needs at least 2 cells, got %d", len(observed))
	}
	for i, e := range expected {
		if e < 1 {
			return r, fmt.Errorf("stats: expected count %g in cell %d is below 1; merge cells", e, i)
		}
		d := float64(observed[i]) - e
		r.Stat += d * d / e
	}
	r.DF = len(observed) - 1 - ddof
	if r.DF < 1 {
		return r, fmt.Errorf("stats: non-positive degrees of freedom %d", r.DF)
	}
	r.PValue = 1 - ChiSquareCDF(r.Stat, r.DF)
	return r, nil
}

// ChiSquareUniform tests observed counts against the uniform distribution
// over the cells.
func ChiSquareUniform(observed []int64) (ChiSquareResult, error) {
	var total int64
	for _, o := range observed {
		total += o
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = float64(total) / float64(len(observed))
	}
	return ChiSquareGOF(observed, expected, 0)
}

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Stat   float64 // the D statistic: sup |F1 − F2|
	PValue float64 // asymptotic p-value
}

// Reject reports whether the null (same distribution) is rejected at alpha.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KSTwoSample computes the two-sample KS statistic and its asymptotic
// p-value. Inputs are not modified. It returns an error if either sample is
// empty.
func KSTwoSample(a, b []float64) (KSResult, error) {
	var r KSResult
	if len(a) == 0 || len(b) == 0 {
		return r, fmt.Errorf("stats: KS test with empty sample (|a|=%d, |b|=%d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := len(as), len(bs)
	var i, j int
	var d float64
	for i < na && j < nb {
		x := math.Min(as[i], bs[j])
		for i < na && as[i] <= x {
			i++
		}
		for j < nb && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	r.Stat = d
	en := math.Sqrt(float64(na) * float64(nb) / float64(na+nb))
	r.PValue = ksProb((en + 0.12 + 0.11/en) * d)
	return r, nil
}

// ksProb evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxIter = 100
	var sum float64
	sign := 1.0
	for j := 1; j <= maxIter; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
