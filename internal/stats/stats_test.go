package stats

import (
	"math"
	"testing"

	"samplewh/internal/randx"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Variance != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if GammaP(3, 0) != 0 {
		t.Error("GammaP(a,0) != 0")
	}
}

func TestGammaPPanics(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{0, 1}, {-1, 1}, {1, -1}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GammaP(%v,%v) did not panic", c.a, c.x)
				}
			}()
			GammaP(c.a, c.x)
		}()
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// chi2 with 2 df is Exp(1/2): CDF(x) = 1 − e^{-x/2}.
	for _, x := range []float64{0.5, 2, 5.99} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v,2) = %v, want %v", x, got, want)
		}
	}
	// Classic critical value: P{X² ≤ 3.841} ≈ 0.95 for df=1.
	if got := ChiSquareCDF(3.841458820694124, 1); math.Abs(got-0.95) > 1e-6 {
		t.Errorf("df=1 critical value CDF = %v", got)
	}
}

func TestChiSquareGOFUniformFit(t *testing.T) {
	// Perfectly uniform observations: statistic 0, p-value 1.
	res, err := ChiSquareGOF([]int64{100, 100, 100, 100}, []float64{100, 100, 100, 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 || res.PValue != 1 || res.DF != 3 {
		t.Fatalf("%+v", res)
	}
	if res.Reject(0.05) {
		t.Fatal("perfect fit rejected")
	}
}

func TestChiSquareGOFDetectsSkew(t *testing.T) {
	res, err := ChiSquareGOF([]int64{300, 100, 100, 100}, []float64{150, 150, 150, 150}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Fatalf("gross skew not rejected: %+v", res)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareGOF([]int64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareGOF([]int64{1}, []float64{1}, 0); err == nil {
		t.Error("single cell accepted")
	}
	if _, err := ChiSquareGOF([]int64{1, 1}, []float64{0.5, 1.5}, 0); err == nil {
		t.Error("sparse expected cell accepted")
	}
	if _, err := ChiSquareGOF([]int64{1, 1}, []float64{1, 1}, 1); err == nil {
		t.Error("zero df accepted")
	}
}

func TestChiSquareUniformOnRNG(t *testing.T) {
	r := randx.New(1)
	counts := make([]int64, 16)
	for i := 0; i < 160000; i++ {
		counts[randx.Intn(r, 16)]++
	}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(1e-6) {
		t.Fatalf("uniform RNG rejected: %+v", res)
	}
}

func TestChiSquareResultString(t *testing.T) {
	res := ChiSquareResult{Stat: 1.5, DF: 3, PValue: 0.68}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	r := randx.New(2)
	a := make([]float64, 2000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = randx.Float64(r)
	}
	for i := range b {
		b[i] = randx.Float64(r)
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(1e-5) {
		t.Fatalf("same distribution rejected: %+v", res)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	r := randx.New(3)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = randx.Float64(r)
	}
	for i := range b {
		b[i] = randx.Float64(r) + 0.3 // shifted
	}
	res, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Fatalf("shifted distribution not rejected: %+v", res)
	}
}

func TestKSTwoSampleErrors(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestKSDoesNotMutateInputs(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{5, 4}
	if _, err := KSTwoSample(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 || a[1] != 1 || b[0] != 5 {
		t.Fatal("KSTwoSample mutated its inputs")
	}
}
