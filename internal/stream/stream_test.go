package stream

import (
	"math"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/randx"
	"samplewh/internal/workload"
)

func TestSampleParallelProducesPerPartitionSamples(t *testing.T) {
	rng := randx.New(1)
	cfg := core.ConfigForNF(64)
	spec := workload.Spec{Dist: workload.Unique, N: 1 << 15, Seed: 3}
	gens := workload.Partitions(spec, 8)
	// Thread-safe factory: pre-generate sources.
	srcs := make([]*randx.RNG, 8)
	for i := range srcs {
		srcs[i] = rng.Split()
	}
	samples, err := SampleParallel(gens, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](cfg, srcs[i])
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("%d samples", len(samples))
	}
	var parentTotal int64
	for i, s := range samples {
		if s.Size() != 64 {
			t.Fatalf("partition %d size %d", i, s.Size())
		}
		parentTotal += s.ParentSize
	}
	if parentTotal != 1<<15 {
		t.Fatalf("parents sum to %d", parentTotal)
	}
	// Merge into one uniform sample of everything.
	m, err := core.MergeTree(samples, core.HRMerge, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != 1<<15 || m.Size() != 64 {
		t.Fatalf("merged: parent=%d size=%d", m.ParentSize, m.Size())
	}
}

func TestSampleParallelEmptyInput(t *testing.T) {
	if _, err := SampleParallel(nil, nil, 1); err == nil {
		t.Fatal("empty generator list accepted")
	}
}

func TestSampleParallelDefaultParallelism(t *testing.T) {
	rng := randx.New(2)
	spec := workload.Spec{Dist: workload.Uniform, N: 4096, Seed: 9}
	gens := workload.Partitions(spec, 4)
	srcs := make([]*randx.RNG, 4)
	for i := range srcs {
		srcs[i] = rng.Split()
	}
	samples, err := SampleParallel(gens, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](core.ConfigForNF(32), srcs[i])
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("%d samples", len(samples))
	}
}

func TestSplitterRoundRobin(t *testing.T) {
	rng := randx.New(3)
	cfg := core.ConfigForNF(1 << 16) // large: stays exhaustive
	sp := NewSplitter(3, func(i int, _ int64) core.Sampler[int64] {
		return core.NewHR[int64](cfg, rng.Split())
	})
	for v := int64(0); v < 9; v++ {
		sp.Feed(v)
	}
	if sp.Fed() != 9 {
		t.Fatalf("Fed = %d", sp.Fed())
	}
	samples, err := sp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d lanes", len(samples))
	}
	// Lane 0 got values 0,3,6; exhaustive so checkable exactly.
	for lane, want := range [][]int64{{0, 3, 6}, {1, 4, 7}, {2, 5, 8}} {
		if samples[lane].ParentSize != 3 {
			t.Fatalf("lane %d parent %d", lane, samples[lane].ParentSize)
		}
		for _, v := range want {
			if samples[lane].Hist.Count(v) != 1 {
				t.Fatalf("lane %d missing value %d", lane, v)
			}
		}
	}
	// Lanes are disjoint; merging yields a sample of all 9 values.
	m, err := core.MergeTree(samples, core.HRMerge, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != 9 || m.Kind != core.Exhaustive {
		t.Fatalf("merged parent=%d kind=%v", m.ParentSize, m.Kind)
	}
}

func TestSplitterPanicsOnZeroLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("w=0 did not panic")
		}
	}()
	NewSplitter[int64](0, nil)
}

func TestTemporalPartitionerCutsEvery(t *testing.T) {
	rng := randx.New(4)
	cfg := core.ConfigForNF(16)
	tp := NewTemporalPartitioner(100, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](cfg, rng.Split())
	})
	for v := int64(0); v < 250; v++ {
		if err := tp.Feed(v); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := tp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d partitions, want 3 (100+100+50)", len(samples))
	}
	if samples[0].ParentSize != 100 || samples[2].ParentSize != 50 {
		t.Fatalf("parents %d, %d", samples[0].ParentSize, samples[2].ParentSize)
	}
}

func TestTemporalPartitionerExactBoundary(t *testing.T) {
	rng := randx.New(5)
	tp := NewTemporalPartitioner(50, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](core.ConfigForNF(16), rng.Split())
	})
	for v := int64(0); v < 100; v++ {
		if err := tp.Feed(v); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := tp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("%d partitions, want exactly 2", len(samples))
	}
}

func TestTemporalPartitionerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("every=0 did not panic")
		}
	}()
	NewTemporalPartitioner[int64](0, nil)
}

func TestRatioPartitionerMaintainsFraction(t *testing.T) {
	// With nF = 64 and min fraction 1/32, each partition must be finalized
	// by the time ~2048 elements have been seen.
	rng := randx.New(6)
	cfg := core.ConfigForNF(64)
	rp, err := NewRatioPartitioner(1.0/32, 64, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](cfg, rng.Split())
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20000
	for v := int64(0); v < total; v++ {
		if err := rp.Feed(v); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := rp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 8 {
		t.Fatalf("only %d partitions over %d elements", len(samples), total)
	}
	var parentSum int64
	for i, s := range samples {
		parentSum += s.ParentSize
		frac := float64(s.Size()) / float64(s.ParentSize)
		// Every finalized partition keeps fraction >= minFraction (up to
		// the one-element overshoot at the cut).
		if i < len(samples)-1 && frac < 1.0/32-0.002 {
			t.Errorf("partition %d fraction %v below bound", i, frac)
		}
	}
	if parentSum != total {
		t.Fatalf("parents sum to %d, want %d", parentSum, total)
	}
}

func TestRatioPartitionerErrors(t *testing.T) {
	rng := randx.New(7)
	factory := func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](core.ConfigForNF(16), rng.Split())
	}
	if _, err := NewRatioPartitioner(0, 1, factory); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := NewRatioPartitioner(1.5, 1, factory); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestRatioPartitionerMergeable(t *testing.T) {
	// The per-partition samples from adaptive partitioning must merge into
	// one uniform sample of the whole stream with correct total parent.
	rng := randx.New(8)
	cfg := core.ConfigForNF(32)
	rp, err := NewRatioPartitioner(1.0/64, 32, func(i int, n int64) core.Sampler[int64] {
		return core.NewHR[int64](cfg, rng.Split())
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	for v := int64(0); v < total; v++ {
		if err := rp.Feed(v); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := rp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.MergeTree(samples, core.HRMerge, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParentSize != total {
		t.Fatalf("merged parent %d", m.ParentSize)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStreamStatisticalUniformity(t *testing.T) {
	// Split + per-lane HR + merge must give every stream element the same
	// inclusion probability.
	const n = 900
	const lanes = 3
	const trials = 2000
	counts := make([]int64, n)
	outer := randx.New(9)
	for trial := 0; trial < trials; trial++ {
		rng := outer.Split()
		cfg := core.ConfigForNF(16)
		sp := NewSplitter(lanes, func(i int, _ int64) core.Sampler[int64] {
			return core.NewHR[int64](cfg, rng.Split())
		})
		for v := int64(0); v < n; v++ {
			sp.Feed(v)
		}
		samples, err := sp.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.MergeTree(samples, core.HRMerge, rng)
		if err != nil {
			t.Fatal(err)
		}
		m.Hist.Each(func(v int64, c int64) { counts[v] += c })
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / n
	for v, c := range counts {
		if math.Abs(float64(c)-mean) > 6*math.Sqrt(mean) {
			t.Errorf("element %d included %d times, mean %v", v, c, mean)
		}
	}
}
