// Package stream implements the data-flow side of the sample warehouse
// (paper §2 and Figure 1): splitting a data set across parallel samplers
// ("the incoming stream could be split over a number of machines"), slicing
// a stream temporally (one partition per day), and partitioning on-the-fly
// based on the sampled-to-seen ratio ("we wait until the ratio of sampled
// data to observed parent data hits the specified lower bound, at which
// point we finalize the current data partition ... and begin a new one").
//
// Everything is generic over the sampled value type V, matching core and
// warehouse; SampleParallel remains the int64 convenience entry point over
// workload generators (the paper's evaluation data type).
package stream

import (
	"fmt"
	"runtime"
	"sync"

	"samplewh/internal/core"
	"samplewh/internal/obs"
	"samplewh/internal/workload"
)

// partitionerObs bundles a stream partitioner's metric handles; the zero
// value is the no-op bundle.
type partitionerObs struct {
	reg       *obs.Registry
	component string
	cuts      *obs.Counter // stream.partitions_cut
}

// newPartitionerObs caches the handles; nil registry → no-op bundle.
func newPartitionerObs(r *obs.Registry, component string) partitionerObs {
	return partitionerObs{
		reg:       r,
		component: component,
		cuts:      r.Counter("stream.partitions_cut"),
	}
}

// cutEvent records one finalized partition: the counter bump plus (when
// tracing) an EvPartitionCut event.
func cutEvent[V comparable](o *partitionerObs, idx int, s *core.Sample[V]) {
	o.cuts.Inc()
	if o.reg.Tracing() {
		o.reg.Emit(obs.Event{
			Type:      obs.EvPartitionCut,
			Component: o.component,
			Partition: fmt.Sprintf("p%d", idx),
			Values: map[string]int64{
				"index":       int64(idx),
				"seen":        s.ParentSize,
				"sample_size": s.Size(),
			},
		})
	}
}

// instrumentSampler routes a sampler's metrics into reg when the sampler
// supports instrumentation (all core samplers do). Nil reg is a no-op.
func instrumentSampler[V comparable](s core.Sampler[V], reg *obs.Registry, partition string) {
	if reg == nil {
		return
	}
	if in, ok := s.(interface {
		Instrument(*obs.Registry, string)
	}); ok {
		in.Instrument(reg, partition)
	}
}

// SamplerFactory builds the sampler for partition index i covering
// expectedN elements.
type SamplerFactory[V comparable] func(i int, expectedN int64) core.Sampler[V]

// Source is one partition's finite stream of values: Len reports the
// expected element count (0 when unknown) and Next yields values until
// exhausted. *workload.Generator satisfies Source[int64].
type Source[V any] interface {
	Len() int64
	Next() (V, bool)
}

// ParallelResult pairs a partition's finalized sample with its index.
type ParallelResult[V comparable] struct {
	Index  int
	Sample *core.Sample[V]
	Err    error
}

// SampleParallel samples every generator concurrently — one sampler per
// partition, at most parallelism goroutines in flight (0 selects
// GOMAXPROCS) — and returns the finalized samples in partition order. This
// simulates the paper's cluster: each partition of the divided batch or
// split stream is sampled by an independent process.
func SampleParallel(gens []*workload.Generator, factory SamplerFactory[int64], parallelism int) ([]*core.Sample[int64], error) {
	srcs := make([]Source[int64], len(gens))
	for i, g := range gens {
		srcs[i] = g
	}
	return SampleParallelFrom(srcs, factory, parallelism)
}

// SampleParallelFrom is SampleParallel over any value type: each source is
// fed through its own sampler, at most parallelism at a time.
func SampleParallelFrom[V comparable](sources []Source[V], factory SamplerFactory[V], parallelism int) ([]*core.Sample[V], error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("stream: no generators")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]ParallelResult[V], len(sources))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, g := range sources {
		wg.Add(1)
		go func(i int, g Source[V]) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			smp := factory(i, g.Len())
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				smp.Feed(v)
			}
			s, err := smp.Finalize()
			results[i] = ParallelResult[V]{Index: i, Sample: s, Err: err}
		}(i, g)
	}
	wg.Wait()
	out := make([]*core.Sample[V], len(sources))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("stream: partition %d: %w", i, r.Err)
		}
		out[i] = r.Sample
	}
	return out, nil
}

// Splitter distributes one incoming stream of values round-robin across w
// parallel samplers — the "split the stream over a number of machines"
// scenario. Because the sub-streams are disjoint, each sampler's output is a
// uniform sample of its sub-stream and the samples can be merged into a
// uniform sample of everything.
type Splitter[V comparable] struct {
	samplers []core.Sampler[V]
	next     int
	fed      int64

	items *obs.Counter   // stream.split.items
	lanes []*obs.Counter // stream.lane.<i>.items (nil entries when uninstrumented)
}

// NewSplitter builds a splitter over w samplers created by factory.
func NewSplitter[V comparable](w int, factory SamplerFactory[V]) *Splitter[V] {
	if w < 1 {
		panic(fmt.Sprintf("stream: NewSplitter with w = %d < 1", w))
	}
	sp := &Splitter[V]{
		samplers: make([]core.Sampler[V], w),
		lanes:    make([]*obs.Counter, w),
	}
	for i := range sp.samplers {
		sp.samplers[i] = factory(i, 0)
	}
	return sp
}

// Instrument routes the splitter's metrics into reg: the total item count,
// one per-lane item counter, and the lane samplers themselves. Call it
// before the first Feed; a nil registry leaves the splitter uninstrumented.
func (sp *Splitter[V]) Instrument(reg *obs.Registry) {
	sp.items = reg.Counter("stream.split.items")
	for i, s := range sp.samplers {
		sp.lanes[i] = reg.Counter(fmt.Sprintf("stream.lane.%d.items", i))
		instrumentSampler(s, reg, fmt.Sprintf("lane-%d", i))
	}
}

// Feed routes one value to the next sampler in round-robin order.
func (sp *Splitter[V]) Feed(v V) {
	sp.samplers[sp.next].Feed(v)
	sp.items.Inc()
	sp.lanes[sp.next].Inc()
	sp.next = (sp.next + 1) % len(sp.samplers)
	sp.fed++
}

// Fed returns the number of values routed so far.
func (sp *Splitter[V]) Fed() int64 { return sp.fed }

// Finalize finalizes every sub-stream sampler and returns the samples.
func (sp *Splitter[V]) Finalize() ([]*core.Sample[V], error) {
	out := make([]*core.Sample[V], len(sp.samplers))
	for i, s := range sp.samplers {
		smp, err := s.Finalize()
		if err != nil {
			return nil, fmt.Errorf("stream: splitter lane %d: %w", i, err)
		}
		out[i] = smp
	}
	return out, nil
}

// TemporalPartitioner cuts a stream into fixed-length partitions (e.g. one
// per day) and samples each independently, so that daily samples can later
// be combined into weekly, monthly or yearly samples (paper §2).
type TemporalPartitioner[V comparable] struct {
	every   int64
	factory SamplerFactory[V]
	cur     core.Sampler[V]
	curIdx  int
	inCur   int64
	done    []*core.Sample[V]
	o       partitionerObs
}

// NewTemporalPartitioner cuts a new partition after every `every` values.
func NewTemporalPartitioner[V comparable](every int64, factory SamplerFactory[V]) *TemporalPartitioner[V] {
	if every < 1 {
		panic(fmt.Sprintf("stream: NewTemporalPartitioner with every = %d < 1", every))
	}
	tp := &TemporalPartitioner[V]{every: every, factory: factory}
	tp.cur = factory(0, every)
	return tp
}

// Instrument routes the partitioner's metrics and EvPartitionCut events into
// reg, and instruments the current and all future partition samplers. Call
// it before the first Feed; a nil registry is a no-op.
func (tp *TemporalPartitioner[V]) Instrument(reg *obs.Registry) {
	tp.o = newPartitionerObs(reg, "stream.temporal")
	instrumentSampler(tp.cur, reg, fmt.Sprintf("p%d", tp.curIdx))
}

// Feed processes one value, cutting a partition boundary when due.
func (tp *TemporalPartitioner[V]) Feed(v V) error {
	tp.cur.Feed(v)
	tp.inCur++
	if tp.inCur >= tp.every {
		return tp.cut()
	}
	return nil
}

// cut finalizes the current partition and opens the next.
func (tp *TemporalPartitioner[V]) cut() error {
	s, err := tp.cur.Finalize()
	if err != nil {
		return fmt.Errorf("stream: temporal cut: %w", err)
	}
	tp.done = append(tp.done, s)
	cutEvent(&tp.o, tp.curIdx, s)
	tp.curIdx++
	tp.cur = tp.factory(tp.curIdx, tp.every)
	instrumentSampler(tp.cur, tp.o.reg, fmt.Sprintf("p%d", tp.curIdx))
	tp.inCur = 0
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in temporal order.
func (tp *TemporalPartitioner[V]) Finalize() ([]*core.Sample[V], error) {
	if tp.inCur > 0 {
		if err := tp.cut(); err != nil {
			return nil, err
		}
	}
	return tp.done, nil
}

// RatioPartitioner implements the paper's on-the-fly partitioning rule for
// fluctuating arrival rates: maintain a bounded-footprint sample of the
// current partition, and when the ratio of sampled data to observed parent
// data falls to the specified lower bound, finalize the partition (and its
// sample) and begin a new one. This keeps every partition's sampling
// fraction at or above MinFraction while the footprint stays bounded.
type RatioPartitioner[V comparable] struct {
	minFraction float64
	minSize     int64 // grace period before the ratio is enforced
	factory     SamplerFactory[V]
	cur         interface {
		core.Sampler[V]
		SampleSize() int64
	}
	curIdx int
	done   []*core.Sample[V]
	o      partitionerObs
}

// NewRatioPartitioner cuts a partition whenever sampled/seen would drop
// below minFraction (checked once at least minSize elements have been
// seen; minSize <= 0 selects 1). The factory must build samplers exposing
// SampleSize (HB, HR, SB and friends all do).
func NewRatioPartitioner[V comparable](minFraction float64, minSize int64, factory SamplerFactory[V]) (*RatioPartitioner[V], error) {
	if minFraction <= 0 || minFraction > 1 {
		return nil, fmt.Errorf("stream: min fraction %v outside (0,1]", minFraction)
	}
	if minSize <= 0 {
		minSize = 1
	}
	rp := &RatioPartitioner[V]{minFraction: minFraction, minSize: minSize, factory: factory}
	if err := rp.open(); err != nil {
		return nil, err
	}
	return rp, nil
}

// Instrument routes the partitioner's metrics and EvPartitionCut events into
// reg, and instruments the current and all future partition samplers. Call
// it before the first Feed; a nil registry is a no-op.
func (rp *RatioPartitioner[V]) Instrument(reg *obs.Registry) {
	rp.o = newPartitionerObs(reg, "stream.ratio")
	instrumentSampler(rp.cur, reg, fmt.Sprintf("p%d", rp.curIdx))
}

// open starts the next partition's sampler.
func (rp *RatioPartitioner[V]) open() error {
	s := rp.factory(rp.curIdx, 0)
	sized, ok := s.(interface {
		core.Sampler[V]
		SampleSize() int64
	})
	if !ok {
		return fmt.Errorf("stream: sampler %T does not expose SampleSize", s)
	}
	rp.cur = sized
	instrumentSampler[V](sized, rp.o.reg, fmt.Sprintf("p%d", rp.curIdx))
	return nil
}

// Feed processes one value; it may finalize the current partition.
func (rp *RatioPartitioner[V]) Feed(v V) error {
	rp.cur.Feed(v)
	seen := rp.cur.Seen()
	if seen < rp.minSize {
		return nil
	}
	if float64(rp.cur.SampleSize()) < rp.minFraction*float64(seen) {
		s, err := rp.cur.Finalize()
		if err != nil {
			return fmt.Errorf("stream: ratio cut: %w", err)
		}
		rp.done = append(rp.done, s)
		cutEvent(&rp.o, rp.curIdx, s)
		rp.curIdx++
		return rp.open()
	}
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in order.
func (rp *RatioPartitioner[V]) Finalize() ([]*core.Sample[V], error) {
	if rp.cur.Seen() > 0 {
		s, err := rp.cur.Finalize()
		if err != nil {
			return nil, err
		}
		rp.done = append(rp.done, s)
		cutEvent(&rp.o, rp.curIdx, s)
	}
	return rp.done, nil
}

// Partitions returns the number of completed partitions so far.
func (rp *RatioPartitioner[V]) Partitions() int { return len(rp.done) }
