// Package stream implements the data-flow side of the sample warehouse
// (paper §2 and Figure 1): splitting a data set across parallel samplers
// ("the incoming stream could be split over a number of machines"), slicing
// a stream temporally (one partition per day), and partitioning on-the-fly
// based on the sampled-to-seen ratio ("we wait until the ratio of sampled
// data to observed parent data hits the specified lower bound, at which
// point we finalize the current data partition ... and begin a new one").
package stream

import (
	"fmt"
	"runtime"
	"sync"

	"samplewh/internal/core"
	"samplewh/internal/workload"
)

// SamplerFactory builds the sampler for partition index i covering
// expectedN elements.
type SamplerFactory func(i int, expectedN int64) core.Sampler[int64]

// ParallelResult pairs a partition's finalized sample with its index.
type ParallelResult struct {
	Index  int
	Sample *core.Sample[int64]
	Err    error
}

// SampleParallel samples every generator concurrently — one sampler per
// partition, at most parallelism goroutines in flight (0 selects
// GOMAXPROCS) — and returns the finalized samples in partition order. This
// simulates the paper's cluster: each partition of the divided batch or
// split stream is sampled by an independent process.
func SampleParallel(gens []*workload.Generator, factory SamplerFactory, parallelism int) ([]*core.Sample[int64], error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("stream: no generators")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]ParallelResult, len(gens))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g *workload.Generator) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			smp := factory(i, g.Len())
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				smp.Feed(v)
			}
			s, err := smp.Finalize()
			results[i] = ParallelResult{Index: i, Sample: s, Err: err}
		}(i, g)
	}
	wg.Wait()
	out := make([]*core.Sample[int64], len(gens))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("stream: partition %d: %w", i, r.Err)
		}
		out[i] = r.Sample
	}
	return out, nil
}

// Splitter distributes one incoming stream of values round-robin across w
// parallel samplers — the "split the stream over a number of machines"
// scenario. Because the sub-streams are disjoint, each sampler's output is a
// uniform sample of its sub-stream and the samples can be merged into a
// uniform sample of everything.
type Splitter struct {
	samplers []core.Sampler[int64]
	next     int
	fed      int64
}

// NewSplitter builds a splitter over w samplers created by factory.
func NewSplitter(w int, factory SamplerFactory) *Splitter {
	if w < 1 {
		panic(fmt.Sprintf("stream: NewSplitter with w = %d < 1", w))
	}
	sp := &Splitter{samplers: make([]core.Sampler[int64], w)}
	for i := range sp.samplers {
		sp.samplers[i] = factory(i, 0)
	}
	return sp
}

// Feed routes one value to the next sampler in round-robin order.
func (sp *Splitter) Feed(v int64) {
	sp.samplers[sp.next].Feed(v)
	sp.next = (sp.next + 1) % len(sp.samplers)
	sp.fed++
}

// Fed returns the number of values routed so far.
func (sp *Splitter) Fed() int64 { return sp.fed }

// Finalize finalizes every sub-stream sampler and returns the samples.
func (sp *Splitter) Finalize() ([]*core.Sample[int64], error) {
	out := make([]*core.Sample[int64], len(sp.samplers))
	for i, s := range sp.samplers {
		smp, err := s.Finalize()
		if err != nil {
			return nil, fmt.Errorf("stream: splitter lane %d: %w", i, err)
		}
		out[i] = smp
	}
	return out, nil
}

// TemporalPartitioner cuts a stream into fixed-length partitions (e.g. one
// per day) and samples each independently, so that daily samples can later
// be combined into weekly, monthly or yearly samples (paper §2).
type TemporalPartitioner struct {
	every   int64
	factory SamplerFactory
	cur     core.Sampler[int64]
	curIdx  int
	inCur   int64
	done    []*core.Sample[int64]
}

// NewTemporalPartitioner cuts a new partition after every `every` values.
func NewTemporalPartitioner(every int64, factory SamplerFactory) *TemporalPartitioner {
	if every < 1 {
		panic(fmt.Sprintf("stream: NewTemporalPartitioner with every = %d < 1", every))
	}
	tp := &TemporalPartitioner{every: every, factory: factory}
	tp.cur = factory(0, every)
	return tp
}

// Feed processes one value, cutting a partition boundary when due.
func (tp *TemporalPartitioner) Feed(v int64) error {
	tp.cur.Feed(v)
	tp.inCur++
	if tp.inCur >= tp.every {
		return tp.cut()
	}
	return nil
}

// cut finalizes the current partition and opens the next.
func (tp *TemporalPartitioner) cut() error {
	s, err := tp.cur.Finalize()
	if err != nil {
		return fmt.Errorf("stream: temporal cut: %w", err)
	}
	tp.done = append(tp.done, s)
	tp.curIdx++
	tp.cur = tp.factory(tp.curIdx, tp.every)
	tp.inCur = 0
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in temporal order.
func (tp *TemporalPartitioner) Finalize() ([]*core.Sample[int64], error) {
	if tp.inCur > 0 {
		if err := tp.cut(); err != nil {
			return nil, err
		}
	}
	return tp.done, nil
}

// RatioPartitioner implements the paper's on-the-fly partitioning rule for
// fluctuating arrival rates: maintain a bounded-footprint sample of the
// current partition, and when the ratio of sampled data to observed parent
// data falls to the specified lower bound, finalize the partition (and its
// sample) and begin a new one. This keeps every partition's sampling
// fraction at or above MinFraction while the footprint stays bounded.
type RatioPartitioner struct {
	minFraction float64
	minSize     int64 // grace period before the ratio is enforced
	factory     SamplerFactory
	cur         interface {
		core.Sampler[int64]
		SampleSize() int64
	}
	curIdx int
	done   []*core.Sample[int64]
}

// NewRatioPartitioner cuts a partition whenever sampled/seen would drop
// below minFraction (checked once at least minSize elements have been
// seen; minSize <= 0 selects 1). The factory must build samplers exposing
// SampleSize (HB, HR, SB and friends all do).
func NewRatioPartitioner(minFraction float64, minSize int64, factory SamplerFactory) (*RatioPartitioner, error) {
	if minFraction <= 0 || minFraction > 1 {
		return nil, fmt.Errorf("stream: min fraction %v outside (0,1]", minFraction)
	}
	if minSize <= 0 {
		minSize = 1
	}
	rp := &RatioPartitioner{minFraction: minFraction, minSize: minSize, factory: factory}
	if err := rp.open(); err != nil {
		return nil, err
	}
	return rp, nil
}

// open starts the next partition's sampler.
func (rp *RatioPartitioner) open() error {
	s := rp.factory(rp.curIdx, 0)
	sized, ok := s.(interface {
		core.Sampler[int64]
		SampleSize() int64
	})
	if !ok {
		return fmt.Errorf("stream: sampler %T does not expose SampleSize", s)
	}
	rp.cur = sized
	return nil
}

// Feed processes one value; it may finalize the current partition.
func (rp *RatioPartitioner) Feed(v int64) error {
	rp.cur.Feed(v)
	seen := rp.cur.Seen()
	if seen < rp.minSize {
		return nil
	}
	if float64(rp.cur.SampleSize()) < rp.minFraction*float64(seen) {
		s, err := rp.cur.Finalize()
		if err != nil {
			return fmt.Errorf("stream: ratio cut: %w", err)
		}
		rp.done = append(rp.done, s)
		rp.curIdx++
		return rp.open()
	}
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in order.
func (rp *RatioPartitioner) Finalize() ([]*core.Sample[int64], error) {
	if rp.cur.Seen() > 0 {
		s, err := rp.cur.Finalize()
		if err != nil {
			return nil, err
		}
		rp.done = append(rp.done, s)
	}
	return rp.done, nil
}

// Partitions returns the number of completed partitions so far.
func (rp *RatioPartitioner) Partitions() int { return len(rp.done) }
