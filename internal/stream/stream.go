// Package stream implements the data-flow side of the sample warehouse
// (paper §2 and Figure 1): splitting a data set across parallel samplers
// ("the incoming stream could be split over a number of machines"), slicing
// a stream temporally (one partition per day), and partitioning on-the-fly
// based on the sampled-to-seen ratio ("we wait until the ratio of sampled
// data to observed parent data hits the specified lower bound, at which
// point we finalize the current data partition ... and begin a new one").
package stream

import (
	"fmt"
	"runtime"
	"sync"

	"samplewh/internal/core"
	"samplewh/internal/obs"
	"samplewh/internal/workload"
)

// partitionerObs bundles a stream partitioner's metric handles; the zero
// value is the no-op bundle.
type partitionerObs struct {
	reg       *obs.Registry
	component string
	cuts      *obs.Counter // stream.partitions_cut
}

// newPartitionerObs caches the handles; nil registry → no-op bundle.
func newPartitionerObs(r *obs.Registry, component string) partitionerObs {
	return partitionerObs{
		reg:       r,
		component: component,
		cuts:      r.Counter("stream.partitions_cut"),
	}
}

// cut records one finalized partition: the counter bump plus (when tracing)
// an EvPartitionCut event.
func (o *partitionerObs) cut(idx int, s *core.Sample[int64]) {
	o.cuts.Inc()
	if o.reg.Tracing() {
		o.reg.Emit(obs.Event{
			Type:      obs.EvPartitionCut,
			Component: o.component,
			Partition: fmt.Sprintf("p%d", idx),
			Values: map[string]int64{
				"index":       int64(idx),
				"seen":        s.ParentSize,
				"sample_size": s.Size(),
			},
		})
	}
}

// instrumentSampler routes a sampler's metrics into reg when the sampler
// supports instrumentation (all core samplers do). Nil reg is a no-op.
func instrumentSampler(s core.Sampler[int64], reg *obs.Registry, partition string) {
	if reg == nil {
		return
	}
	if in, ok := s.(interface {
		Instrument(*obs.Registry, string)
	}); ok {
		in.Instrument(reg, partition)
	}
}

// SamplerFactory builds the sampler for partition index i covering
// expectedN elements.
type SamplerFactory func(i int, expectedN int64) core.Sampler[int64]

// ParallelResult pairs a partition's finalized sample with its index.
type ParallelResult struct {
	Index  int
	Sample *core.Sample[int64]
	Err    error
}

// SampleParallel samples every generator concurrently — one sampler per
// partition, at most parallelism goroutines in flight (0 selects
// GOMAXPROCS) — and returns the finalized samples in partition order. This
// simulates the paper's cluster: each partition of the divided batch or
// split stream is sampled by an independent process.
func SampleParallel(gens []*workload.Generator, factory SamplerFactory, parallelism int) ([]*core.Sample[int64], error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("stream: no generators")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]ParallelResult, len(gens))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, g := range gens {
		wg.Add(1)
		go func(i int, g *workload.Generator) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			smp := factory(i, g.Len())
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				smp.Feed(v)
			}
			s, err := smp.Finalize()
			results[i] = ParallelResult{Index: i, Sample: s, Err: err}
		}(i, g)
	}
	wg.Wait()
	out := make([]*core.Sample[int64], len(gens))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("stream: partition %d: %w", i, r.Err)
		}
		out[i] = r.Sample
	}
	return out, nil
}

// Splitter distributes one incoming stream of values round-robin across w
// parallel samplers — the "split the stream over a number of machines"
// scenario. Because the sub-streams are disjoint, each sampler's output is a
// uniform sample of its sub-stream and the samples can be merged into a
// uniform sample of everything.
type Splitter struct {
	samplers []core.Sampler[int64]
	next     int
	fed      int64

	items *obs.Counter   // stream.split.items
	lanes []*obs.Counter // stream.lane.<i>.items (nil entries when uninstrumented)
}

// NewSplitter builds a splitter over w samplers created by factory.
func NewSplitter(w int, factory SamplerFactory) *Splitter {
	if w < 1 {
		panic(fmt.Sprintf("stream: NewSplitter with w = %d < 1", w))
	}
	sp := &Splitter{
		samplers: make([]core.Sampler[int64], w),
		lanes:    make([]*obs.Counter, w),
	}
	for i := range sp.samplers {
		sp.samplers[i] = factory(i, 0)
	}
	return sp
}

// Instrument routes the splitter's metrics into reg: the total item count,
// one per-lane item counter, and the lane samplers themselves. Call it
// before the first Feed; a nil registry leaves the splitter uninstrumented.
func (sp *Splitter) Instrument(reg *obs.Registry) {
	sp.items = reg.Counter("stream.split.items")
	for i, s := range sp.samplers {
		sp.lanes[i] = reg.Counter(fmt.Sprintf("stream.lane.%d.items", i))
		instrumentSampler(s, reg, fmt.Sprintf("lane-%d", i))
	}
}

// Feed routes one value to the next sampler in round-robin order.
func (sp *Splitter) Feed(v int64) {
	sp.samplers[sp.next].Feed(v)
	sp.items.Inc()
	sp.lanes[sp.next].Inc()
	sp.next = (sp.next + 1) % len(sp.samplers)
	sp.fed++
}

// Fed returns the number of values routed so far.
func (sp *Splitter) Fed() int64 { return sp.fed }

// Finalize finalizes every sub-stream sampler and returns the samples.
func (sp *Splitter) Finalize() ([]*core.Sample[int64], error) {
	out := make([]*core.Sample[int64], len(sp.samplers))
	for i, s := range sp.samplers {
		smp, err := s.Finalize()
		if err != nil {
			return nil, fmt.Errorf("stream: splitter lane %d: %w", i, err)
		}
		out[i] = smp
	}
	return out, nil
}

// TemporalPartitioner cuts a stream into fixed-length partitions (e.g. one
// per day) and samples each independently, so that daily samples can later
// be combined into weekly, monthly or yearly samples (paper §2).
type TemporalPartitioner struct {
	every   int64
	factory SamplerFactory
	cur     core.Sampler[int64]
	curIdx  int
	inCur   int64
	done    []*core.Sample[int64]
	o       partitionerObs
}

// NewTemporalPartitioner cuts a new partition after every `every` values.
func NewTemporalPartitioner(every int64, factory SamplerFactory) *TemporalPartitioner {
	if every < 1 {
		panic(fmt.Sprintf("stream: NewTemporalPartitioner with every = %d < 1", every))
	}
	tp := &TemporalPartitioner{every: every, factory: factory}
	tp.cur = factory(0, every)
	return tp
}

// Instrument routes the partitioner's metrics and EvPartitionCut events into
// reg, and instruments the current and all future partition samplers. Call
// it before the first Feed; a nil registry is a no-op.
func (tp *TemporalPartitioner) Instrument(reg *obs.Registry) {
	tp.o = newPartitionerObs(reg, "stream.temporal")
	instrumentSampler(tp.cur, reg, fmt.Sprintf("p%d", tp.curIdx))
}

// Feed processes one value, cutting a partition boundary when due.
func (tp *TemporalPartitioner) Feed(v int64) error {
	tp.cur.Feed(v)
	tp.inCur++
	if tp.inCur >= tp.every {
		return tp.cut()
	}
	return nil
}

// cut finalizes the current partition and opens the next.
func (tp *TemporalPartitioner) cut() error {
	s, err := tp.cur.Finalize()
	if err != nil {
		return fmt.Errorf("stream: temporal cut: %w", err)
	}
	tp.done = append(tp.done, s)
	tp.o.cut(tp.curIdx, s)
	tp.curIdx++
	tp.cur = tp.factory(tp.curIdx, tp.every)
	instrumentSampler(tp.cur, tp.o.reg, fmt.Sprintf("p%d", tp.curIdx))
	tp.inCur = 0
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in temporal order.
func (tp *TemporalPartitioner) Finalize() ([]*core.Sample[int64], error) {
	if tp.inCur > 0 {
		if err := tp.cut(); err != nil {
			return nil, err
		}
	}
	return tp.done, nil
}

// RatioPartitioner implements the paper's on-the-fly partitioning rule for
// fluctuating arrival rates: maintain a bounded-footprint sample of the
// current partition, and when the ratio of sampled data to observed parent
// data falls to the specified lower bound, finalize the partition (and its
// sample) and begin a new one. This keeps every partition's sampling
// fraction at or above MinFraction while the footprint stays bounded.
type RatioPartitioner struct {
	minFraction float64
	minSize     int64 // grace period before the ratio is enforced
	factory     SamplerFactory
	cur         interface {
		core.Sampler[int64]
		SampleSize() int64
	}
	curIdx int
	done   []*core.Sample[int64]
	o      partitionerObs
}

// NewRatioPartitioner cuts a partition whenever sampled/seen would drop
// below minFraction (checked once at least minSize elements have been
// seen; minSize <= 0 selects 1). The factory must build samplers exposing
// SampleSize (HB, HR, SB and friends all do).
func NewRatioPartitioner(minFraction float64, minSize int64, factory SamplerFactory) (*RatioPartitioner, error) {
	if minFraction <= 0 || minFraction > 1 {
		return nil, fmt.Errorf("stream: min fraction %v outside (0,1]", minFraction)
	}
	if minSize <= 0 {
		minSize = 1
	}
	rp := &RatioPartitioner{minFraction: minFraction, minSize: minSize, factory: factory}
	if err := rp.open(); err != nil {
		return nil, err
	}
	return rp, nil
}

// Instrument routes the partitioner's metrics and EvPartitionCut events into
// reg, and instruments the current and all future partition samplers. Call
// it before the first Feed; a nil registry is a no-op.
func (rp *RatioPartitioner) Instrument(reg *obs.Registry) {
	rp.o = newPartitionerObs(reg, "stream.ratio")
	instrumentSampler(rp.cur, reg, fmt.Sprintf("p%d", rp.curIdx))
}

// open starts the next partition's sampler.
func (rp *RatioPartitioner) open() error {
	s := rp.factory(rp.curIdx, 0)
	sized, ok := s.(interface {
		core.Sampler[int64]
		SampleSize() int64
	})
	if !ok {
		return fmt.Errorf("stream: sampler %T does not expose SampleSize", s)
	}
	rp.cur = sized
	instrumentSampler(sized, rp.o.reg, fmt.Sprintf("p%d", rp.curIdx))
	return nil
}

// Feed processes one value; it may finalize the current partition.
func (rp *RatioPartitioner) Feed(v int64) error {
	rp.cur.Feed(v)
	seen := rp.cur.Seen()
	if seen < rp.minSize {
		return nil
	}
	if float64(rp.cur.SampleSize()) < rp.minFraction*float64(seen) {
		s, err := rp.cur.Finalize()
		if err != nil {
			return fmt.Errorf("stream: ratio cut: %w", err)
		}
		rp.done = append(rp.done, s)
		rp.o.cut(rp.curIdx, s)
		rp.curIdx++
		return rp.open()
	}
	return nil
}

// Finalize closes the in-progress partition (if non-empty) and returns all
// partition samples in order.
func (rp *RatioPartitioner) Finalize() ([]*core.Sample[int64], error) {
	if rp.cur.Seen() > 0 {
		s, err := rp.cur.Finalize()
		if err != nil {
			return nil, err
		}
		rp.done = append(rp.done, s)
		rp.o.cut(rp.curIdx, s)
	}
	return rp.done, nil
}

// Partitions returns the number of completed partitions so far.
func (rp *RatioPartitioner) Partitions() int { return len(rp.done) }
