package stream

import (
	"fmt"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/randx"
)

// sliceSource adapts a slice to Source for the generic sampling path.
type sliceSource[V any] struct {
	vals []V
	i    int
}

func (s *sliceSource[V]) Len() int64 { return int64(len(s.vals)) }

func (s *sliceSource[V]) Next() (V, bool) {
	if s.i >= len(s.vals) {
		var zero V
		return zero, false
	}
	v := s.vals[s.i]
	s.i++
	return v, true
}

// TestSplitterGenericValueType exercises the stream layer end-to-end over a
// non-int64 value type: split a stream of strings, sample each lane, and
// merge the lane samples into one uniform sample.
func TestSplitterGenericValueType(t *testing.T) {
	rng := randx.New(11)
	cfg := core.ConfigForNF(32)
	sp := NewSplitter(3, func(i int, _ int64) core.Sampler[string] {
		return core.NewHR[string](cfg, rng.Split())
	})
	const n = 900
	for i := 0; i < n; i++ {
		sp.Feed(fmt.Sprintf("user-%04d", i))
	}
	if sp.Fed() != n {
		t.Fatalf("fed %d, want %d", sp.Fed(), n)
	}
	samples, err := sp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := core.MergeTree(samples, core.HRMerge[string], rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if merged.ParentSize != n {
		t.Fatalf("merged parent size %d, want %d", merged.ParentSize, n)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSampleParallelFromGeneric runs the parallel sampling entry point over
// string sources.
func TestSampleParallelFromGeneric(t *testing.T) {
	rng := randx.New(12)
	cfg := core.ConfigForNF(16)
	var sources []Source[string]
	for p := 0; p < 4; p++ {
		vals := make([]string, 300)
		for i := range vals {
			vals[i] = fmt.Sprintf("p%d-%d", p, i)
		}
		sources = append(sources, &sliceSource[string]{vals: vals})
	}
	srcs := make([]*randx.RNG, len(sources))
	for i := range srcs {
		srcs[i] = rng.Split()
	}
	samples, err := SampleParallelFrom(sources, func(i int, expectedN int64) core.Sampler[string] {
		return core.NewHR[string](cfg, srcs[i])
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("%d samples, want 4", len(samples))
	}
	for i, s := range samples {
		if s.ParentSize != 300 {
			t.Fatalf("partition %d parent size %d, want 300", i, s.ParentSize)
		}
	}
}

// TestTemporalPartitionerGeneric cuts a string stream temporally.
func TestTemporalPartitionerGeneric(t *testing.T) {
	rng := randx.New(13)
	cfg := core.ConfigForNF(16)
	tp := NewTemporalPartitioner(100, func(i int, n int64) core.Sampler[string] {
		return core.NewHR[string](cfg, rng.Split())
	})
	for i := 0; i < 250; i++ {
		if err := tp.Feed(fmt.Sprintf("ev-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	samples, err := tp.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("%d partitions, want 3 (100+100+50)", len(samples))
	}
	if samples[2].ParentSize != 50 {
		t.Fatalf("tail partition parent %d, want 50", samples[2].ParentSize)
	}
}
