package fenwick

import (
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("empty tree: Len=%d Total=%d", tr.Len(), tr.Total())
	}
}

func TestAddAndPrefix(t *testing.T) {
	tr := New(5)
	tr.Add(0, 3)
	tr.Add(2, 4)
	tr.Add(4, 1)
	wantPrefix := []int64{3, 3, 7, 7, 8}
	for i, w := range wantPrefix {
		if got := tr.Prefix(i); got != w {
			t.Errorf("Prefix(%d) = %d, want %d", i, got, w)
		}
	}
	if got := tr.Prefix(-1); got != 0 {
		t.Errorf("Prefix(-1) = %d", got)
	}
	if tr.Total() != 8 {
		t.Errorf("Total = %d, want 8", tr.Total())
	}
}

func TestCount(t *testing.T) {
	tr := FromCounts([]int64{5, 0, 3, 2})
	for i, w := range []int64{5, 0, 3, 2} {
		if got := tr.Count(i); got != w {
			t.Errorf("Count(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestFromCountsMatchesAdds(t *testing.T) {
	counts := []int64{1, 5, 0, 2, 9, 0, 0, 3, 4}
	a := FromCounts(counts)
	b := New(len(counts))
	for i, c := range counts {
		if c != 0 {
			b.Add(i, c)
		}
	}
	for i := range counts {
		if a.Prefix(i) != b.Prefix(i) {
			t.Fatalf("Prefix(%d): FromCounts=%d Adds=%d", i, a.Prefix(i), b.Prefix(i))
		}
	}
}

func TestSelect(t *testing.T) {
	// counts: slot 0 holds 3 (v=1..3), slot 2 holds 4 (v=4..7), slot 4 holds 1 (v=8).
	tr := FromCounts([]int64{3, 0, 4, 0, 1})
	cases := []struct {
		v    int64
		want int
	}{{1, 0}, {2, 0}, {3, 0}, {4, 2}, {7, 2}, {8, 4}}
	for _, c := range cases {
		if got := tr.Select(c.v); got != c.want {
			t.Errorf("Select(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSelectAfterUpdates(t *testing.T) {
	tr := FromCounts([]int64{2, 2, 2})
	tr.Add(1, -2)
	if got := tr.Select(3); got != 2 {
		t.Errorf("Select(3) after removal = %d, want 2", got)
	}
	if got := tr.Select(2); got != 0 {
		t.Errorf("Select(2) = %d, want 0", got)
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	tr := FromCounts([]int64{1, 1})
	for _, v := range []int64{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Select(%d) did not panic", v)
				}
			}()
			tr.Select(v)
		}()
	}
}

func TestAddNegativePanics(t *testing.T) {
	tr := FromCounts([]int64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("Add driving count negative did not panic")
		}
	}()
	tr.Add(0, -2)
}

func TestIndexPanics(t *testing.T) {
	tr := New(3)
	for _, f := range []func(){
		func() { tr.Add(3, 1) },
		func() { tr.Add(-1, 1) },
		func() { tr.Prefix(3) },
		func() { tr.Count(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromCountsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromCounts with negative count did not panic")
		}
	}()
	FromCounts([]int64{1, -1})
}

// TestSelectPropertyMatchesLinearScan cross-checks Select against the naive
// O(n) definition on random inputs.
func TestSelectPropertyMatchesLinearScan(t *testing.T) {
	check := func(raw []uint8, pick uint16) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int64, len(raw))
		var total int64
		for i, r := range raw {
			counts[i] = int64(r % 7)
			total += counts[i]
		}
		if total == 0 {
			return true
		}
		tr := FromCounts(counts)
		v := int64(pick)%total + 1
		got := tr.Select(v)
		// Naive: smallest l with prefix >= v.
		var run int64
		want := -1
		for i, c := range counts {
			run += c
			if run >= v {
				want = i
				break
			}
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelect(b *testing.B) {
	counts := make([]int64, 8192)
	for i := range counts {
		counts[i] = int64(i%13) + 1
	}
	tr := FromCounts(counts)
	total := tr.Total()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tr.Select(int64(i)%total + 1)
	}
	_ = sink
}
