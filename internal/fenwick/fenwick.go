// Package fenwick implements a binary indexed tree (Fenwick tree) over
// int64 counts. The sample warehouse uses it to select reservoir-purge
// victims in O(log m): the paper's purgeReservoir (Figure 4, line 9) picks
// the entry l whose cumulative count interval contains a uniform random
// index v, i.e. a weighted selection by prefix sums.
package fenwick

import "fmt"

// Tree is a Fenwick tree over n slots of non-negative int64 counts.
// The zero value is an empty tree; construct with New for a sized tree.
type Tree struct {
	tree  []int64 // 1-based internal array
	total int64
}

// New returns a tree with n zero-initialized slots.
func New(n int) *Tree {
	if n < 0 {
		panic(fmt.Sprintf("fenwick: New with n = %d < 0", n))
	}
	return &Tree{tree: make([]int64, n+1)}
}

// FromCounts builds a tree initialized with the given counts in O(n).
func FromCounts(counts []int64) *Tree {
	t := New(len(counts))
	for i, c := range counts {
		if c < 0 {
			panic("fenwick: FromCounts with negative count")
		}
		t.tree[i+1] = c
		t.total += c
	}
	// O(n) construction: push each node's value into its parent.
	for i := 1; i <= len(counts); i++ {
		j := i + (i & -i)
		if j <= len(counts) {
			t.tree[j] += t.tree[i]
		}
	}
	return t
}

// Len returns the number of slots.
func (t *Tree) Len() int { return len(t.tree) - 1 }

// Total returns the sum of all counts.
func (t *Tree) Total() int64 { return t.total }

// Add adds delta to slot i (0-based). The resulting count must stay
// non-negative; Add panics otherwise (checked via the running total of the
// slot, which costs one Prefix query only when delta is negative).
func (t *Tree) Add(i int, delta int64) {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("fenwick: Add index %d out of range [0,%d)", i, t.Len()))
	}
	if delta < 0 && t.Count(i)+delta < 0 {
		panic("fenwick: Add would make a count negative")
	}
	t.total += delta
	for j := i + 1; j < len(t.tree); j += j & -j {
		t.tree[j] += delta
	}
}

// Prefix returns the sum of slots [0, i] (0-based, inclusive).
// Prefix(-1) is 0.
func (t *Tree) Prefix(i int) int64 {
	if i < -1 || i >= t.Len() {
		panic(fmt.Sprintf("fenwick: Prefix index %d out of range [-1,%d)", i, t.Len()))
	}
	var s int64
	for j := i + 1; j > 0; j -= j & -j {
		s += t.tree[j]
	}
	return s
}

// Count returns the count in slot i.
func (t *Tree) Count(i int) int64 {
	if i < 0 || i >= t.Len() {
		panic(fmt.Sprintf("fenwick: Count index %d out of range [0,%d)", i, t.Len()))
	}
	return t.Prefix(i) - t.Prefix(i-1)
}

// Select returns the smallest slot index l such that Prefix(l) >= v, for
// 1 <= v <= Total(). This is exactly the paper's victim rule: "l = γ such
// that Σ_{i<γ} n_i < v ≤ Σ_{i≤γ} n_i". It panics if v is out of range.
func (t *Tree) Select(v int64) int {
	if v < 1 || v > t.total {
		panic(fmt.Sprintf("fenwick: Select v = %d out of range [1,%d]", v, t.total))
	}
	pos := 0
	// Highest power of two <= Len.
	bit := 1
	for bit<<1 <= t.Len() {
		bit <<= 1
	}
	rem := v
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next < len(t.tree) && t.tree[next] < rem {
			rem -= t.tree[next]
			pos = next
		}
	}
	return pos // pos is 0-based slot index of the selected entry
}
