package plan

import (
	"reflect"
	"testing"
	"time"
)

// known builds a fully-known PartitionStat with the given id, population and
// predicted-cost inputs.
func known(id string, pop, footprint, loadNS int64, cached bool) PartitionStat {
	return PartitionStat{
		ID:         id,
		SampleSize: 256,
		ParentSize: pop,
		Footprint:  footprint,
		Cached:     cached,
		LoadNS:     loadNS,
		Known:      true,
	}
}

func order(p QueryPlan) []string {
	out := make([]string, len(p.Steps))
	for i, st := range p.Steps {
		out[i] = st.Stat.ID
	}
	return out
}

func TestBuildRanking(t *testing.T) {
	stats := []PartitionStat{
		known("slow-big", 4000, 1000, 8_000_000, false),   // 0.5 pop/ns-ish
		known("fast-small", 1000, 1000, 1_000_000, false), // 1.0 pop/ns
		known("cached", 500, 1000, 5_000_000, true),       // free: cache-resident
		{ID: "mystery", Known: false, Footprint: 1000},    // no registry entry
		known("fast-big", 8000, 1000, 2_000_000, false),   // 4.0 pop/ns — best loadable
	}
	p := Build(stats, Bounds{MaxTime: time.Second}, Config{})
	want := []string{"mystery", "cached", "fast-big", "fast-small", "slow-big"}
	if got := order(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("plan order %v, want %v", got, want)
	}
	if p.Unknown != 1 {
		t.Fatalf("unknown = %d, want 1", p.Unknown)
	}
	// TotalPop counts only known partitions: the mystery one contributes
	// after the executor measures it.
	if p.TotalPop != 4000+1000+500+8000 {
		t.Fatalf("total pop = %d", p.TotalPop)
	}
	if p.Steps[1].CostNS != 0 {
		t.Fatalf("cached step predicted cost %d, want 0", p.Steps[1].CostNS)
	}
}

func TestBuildDeterministicAndTiesById(t *testing.T) {
	// Identical statistics everywhere: ranking must fall back to ID order,
	// and repeated builds must agree exactly.
	stats := []PartitionStat{
		known("p03", 1000, 512, 0, false),
		known("p01", 1000, 512, 0, false),
		known("p02", 1000, 512, 0, false),
		known("p00", 1000, 512, 0, false),
	}
	first := Build(stats, Bounds{MaxErr: 0.2}, Config{})
	want := []string{"p00", "p01", "p02", "p03"}
	if got := order(first); !reflect.DeepEqual(got, want) {
		t.Fatalf("tie-break order %v, want %v", got, want)
	}
	for i := 0; i < 5; i++ {
		if again := Build(stats, Bounds{MaxErr: 0.2}, Config{}); !reflect.DeepEqual(again, first) {
			t.Fatalf("rebuild %d differs: %+v vs %+v", i, again, first)
		}
	}
}

func TestBuildPredictedStop(t *testing.T) {
	// 8 equal partitions, nf 256, pop 1000 each. The proxy half-width after k
	// partitions is dominated by the uncovered term (1-k/8)/2, so loosening
	// maxerr must move the predicted stop earlier, monotonically.
	stats := make([]PartitionStat, 8)
	for i := range stats {
		stats[i] = known(string(rune('a'+i)), 1000, 512, 0, false)
	}
	prev := 0
	for _, maxerr := range []float64{0.5, 0.3, 0.2, 0.1} {
		p := Build(stats, Bounds{MaxErr: maxerr}, Config{})
		if p.PredictedStop < 1 || p.PredictedStop > len(stats) {
			t.Fatalf("maxerr %v: predicted stop %d out of range", maxerr, p.PredictedStop)
		}
		if prev != 0 && p.PredictedStop < prev {
			t.Fatalf("tightening maxerr to %v moved the stop earlier (%d < %d)", maxerr, p.PredictedStop, prev)
		}
		prev = p.PredictedStop
		var pop, ns int64
		for _, st := range p.Steps[:p.PredictedStop] {
			pop += st.Stat.ParentSize
			ns += st.CostNS
		}
		if p.PredictedPop != pop || p.PredictedNS != ns {
			t.Fatalf("maxerr %v: predicted pop/ns %d/%d, want %d/%d (stop %d)",
				maxerr, p.PredictedPop, p.PredictedNS, pop, ns, p.PredictedStop)
		}
	}
	// A loose bound must prune; a bound below the full-coverage floor cannot
	// be predicted met and the plan covers everything.
	if p := Build(stats, Bounds{MaxErr: 0.5}, Config{}); p.PredictedStop >= len(stats) {
		t.Fatalf("maxerr 0.5 predicted no pruning: stop %d", p.PredictedStop)
	}
	p := Build(stats, Bounds{MaxErr: 0.01}, Config{})
	if p.PredictedStop != len(stats) || p.PredictedPop != p.TotalPop {
		t.Fatalf("unachievable maxerr: stop %d pop %d, want full plan", p.PredictedStop, p.PredictedPop)
	}
}

func TestBuildUnknownStatsDisablePrediction(t *testing.T) {
	stats := []PartitionStat{
		known("a", 1000, 512, 0, false),
		known("b", 1000, 512, 0, false),
		{ID: "z", Known: false},
	}
	p := Build(stats, Bounds{MaxErr: 0.49}, Config{})
	// With an unmeasured partition the total population is unknown, so no
	// stop point can honestly be predicted.
	if p.PredictedStop != len(stats) {
		t.Fatalf("predicted stop %d with unknown stats, want %d", p.PredictedStop, len(stats))
	}
	if order(p)[0] != "z" {
		t.Fatalf("unknown partition not planned first: %v", order(p))
	}
}

func TestNeededFrom(t *testing.T) {
	stats := make([]PartitionStat, 8)
	for i := range stats {
		stats[i] = known(string(rune('a'+i)), 1000, 512, 0, false)
	}
	const z = 1.959963984540054
	p := Build(stats, Bounds{MaxErr: 0.2}, Config{})

	// From a cold start the prediction matches the plan's own stop point.
	if got := p.NeededFrom(0, 0, 0, z); got != p.PredictedStop {
		t.Fatalf("NeededFrom(0) = %d, want %d", got, p.PredictedStop)
	}
	// Partway through, fewer steps remain to be folded.
	mid := p.PredictedStop - 1
	if got := p.NeededFrom(mid, 256, int64(mid)*1000, z); got != 1 {
		t.Fatalf("NeededFrom one step before the stop = %d, want 1", got)
	}
	// Past the end: nothing left.
	if got := p.NeededFrom(len(p.Steps), 256, 8000, z); got != 0 {
		t.Fatalf("NeededFrom(end) = %d, want 0", got)
	}
	// No error bound: everything remaining is needed.
	full := Build(stats, Bounds{MaxTime: time.Second}, Config{})
	if got := full.NeededFrom(2, 256, 2000, z); got != len(stats)-2 {
		t.Fatalf("NeededFrom without maxerr = %d, want %d", got, len(stats)-2)
	}
	// Unachievable bound: the executor still gets the full remainder.
	tight := Build(stats, Bounds{MaxErr: 0.001}, Config{})
	if got := tight.NeededFrom(0, 0, 0, z); got != len(stats) {
		t.Fatalf("NeededFrom under unachievable bound = %d, want %d", got, len(stats))
	}
}

func TestCostCalibration(t *testing.T) {
	// Two measured partitions establish 1000 ns/byte; the unmeasured one's
	// cost must be extrapolated from its footprint.
	stats := []PartitionStat{
		known("m1", 1000, 100, 100_000, false),
		known("m2", 1000, 300, 300_000, false),
		known("u", 1000, 200, 0, false),
	}
	p := Build(stats, Bounds{MaxTime: time.Second}, Config{})
	for _, st := range p.Steps {
		if st.Stat.ID == "u" && st.CostNS != 200_000 {
			t.Fatalf("extrapolated cost %d, want 200000", st.CostNS)
		}
	}
	// With no EWMA anywhere the footprint stands in as the relative cost.
	raw := []PartitionStat{known("a", 1000, 512, 0, false)}
	if p := Build(raw, Bounds{MaxTime: time.Second}, Config{}); p.Steps[0].CostNS != 512 {
		t.Fatalf("fallback cost %d, want footprint 512", p.Steps[0].CostNS)
	}
}

func TestBoundsBounded(t *testing.T) {
	if (Bounds{}).Bounded() {
		t.Fatal("zero bounds reported bounded")
	}
	if !(Bounds{MaxErr: 0.1}).Bounded() || !(Bounds{MaxTime: time.Millisecond}).Bounded() {
		t.Fatal("set bounds reported unbounded")
	}
}

func TestBuildWeightedRanking(t *testing.T) {
	// Equal cost and population: a higher predicted-contribution weight must
	// win; zero weight plans as full weight (no prediction).
	stats := []PartitionStat{
		known("half", 4000, 1000, 2_000_000, false),
		known("tenth", 4000, 1000, 2_000_000, false),
		known("unknown-weight", 4000, 1000, 2_000_000, false),
		known("full", 4000, 1000, 2_000_000, false),
	}
	stats[0].Weight = 0.5
	stats[1].Weight = 0.1
	stats[3].Weight = 1.0
	p := Build(stats, Bounds{MaxErr: 0.05}, Config{})
	// full and unknown-weight both rank at weight 1 and tie-break by ID.
	want := []string{"full", "unknown-weight", "half", "tenth"}
	if got := order(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("weighted order %v, want %v", got, want)
	}

	// Weight trades off against cost: weight 0.5 at half the cost beats
	// weight 1 at full cost.
	stats2 := []PartitionStat{
		known("heavy", 4000, 1000, 4_000_000, false),
		known("light", 4000, 1000, 1_000_000, false),
	}
	stats2[0].Weight = 1.0
	stats2[1].Weight = 0.5
	p2 := Build(stats2, Bounds{MaxErr: 0.05}, Config{})
	if got := order(p2); !reflect.DeepEqual(got, []string{"light", "heavy"}) {
		t.Fatalf("cost-weight tradeoff order %v", got)
	}

	// Out-of-range weights normalize to 1 and keep integer-exact ordering.
	stats3 := []PartitionStat{
		known("b", 4000, 1000, 2_000_000, false),
		known("a", 4000, 1000, 2_000_000, false),
	}
	stats3[0].Weight = -3
	stats3[1].Weight = 7
	p3 := Build(stats3, Bounds{}, Config{})
	if got := order(p3); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("normalized-weight order %v", got)
	}
}
