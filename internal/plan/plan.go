// Package plan turns a query's partition set plus error/latency bounds into
// an ordered execution plan — the "plan" half of the warehouse's
// plan/execute split (DESIGN.md §14). The paper's merge algebra (Theorem 1)
// makes any subset of partition samples a valid uniform sample of that
// subset's union, so a bounded query does not have to touch every partition:
// the planner ranks partitions by how much population they add per predicted
// load cost and predicts how far down the ranking the executor must go
// before the answer's confidence interval meets the caller's maxerr. The
// statistics it consumes are the cheap per-partition registry entries the
// warehouse maintains at roll-in time (PS3-style), plus cache residency and
// the loader's per-partition latency EWMA.
package plan

import (
	"sort"
	"time"

	"samplewh/internal/estimate"
)

// Bounds carries a bounded query's targets. The zero value means "full
// merge" — the planner is never engaged and the query path is byte-identical
// to the unbounded one.
type Bounds struct {
	// MaxErr is the fraction-scale half-width target for the answer's
	// confidence interval (see estimate.BoundedFraction); 0 disables the
	// error bound.
	MaxErr float64
	// MaxTime is the execution budget for loading and merging; 0 disables
	// it. The first wave of loads always runs, so a too-tight budget yields
	// the smallest non-empty answer rather than an error.
	MaxTime time.Duration
}

// Bounded reports whether either bound is set.
func (b Bounds) Bounded() bool { return b.MaxErr > 0 || b.MaxTime > 0 }

// PartitionStat is one partition's planning input.
type PartitionStat struct {
	ID         string
	SampleSize int64 // stored sample rows (n)
	ParentSize int64 // population the sample covers (N)
	Footprint  int64 // stored bytes
	Cached     bool  // decoded sample resident in the read cache
	LoadNS     int64 // loader latency EWMA for this partition; 0 = unmeasured
	// Known is false when the registry holds no entry for the partition
	// (manifest written before the registry existed). Unknown partitions are
	// planned first: their population is unaccounted for, so no error bound
	// can be declared met until they have been loaded and measured.
	Known bool
	// Weight is the predicted fraction of this partition's population that
	// contributes to the query's predicate, in (0, 1] — typically a sketch
	// sidecar's range-overlap estimate. 0 means "no prediction" and plans as
	// full weight. Weight shapes only the ordering (contribution per cost);
	// coverage accounting still counts the full ParentSize, so error bounds
	// are unaffected by a wrong prediction.
	Weight float64
}

// Step is one planned partition with its predicted load cost.
type Step struct {
	Stat PartitionStat
	// CostNS is the predicted load cost: 0 for cache-resident partitions,
	// the latency EWMA when measured, otherwise a footprint-proportional
	// fallback calibrated from the partitions that do have EWMAs.
	CostNS int64
}

// QueryPlan is an ordered execution plan: load Steps in order, stop when the
// running interval meets the bounds.
type QueryPlan struct {
	Steps  []Step
	Bounds Bounds
	// TotalPop is the summed population of every known step. Unknown steps
	// contribute only after the executor loads and measures them.
	TotalPop int64
	// Unknown counts steps planned without registry statistics.
	Unknown int
	// PredictedStop is the number of steps the proxy interval predicts the
	// executor needs to satisfy MaxErr (len(Steps) when MaxErr is unset or
	// never predicted met).
	PredictedStop int
	// PredictedPop is the population covered by the first PredictedStop steps.
	PredictedPop int64
	// PredictedNS is the summed predicted load cost of those steps.
	PredictedNS int64
}

// Config tunes the planner.
type Config struct {
	// Confidence selects the critical value for the proxy interval used in
	// predictions (0.90, 0.95, 0.99; default 0.95). The executor's actual
	// stop decision uses the query's own interval, so this only shapes
	// wave sizing and the predicted stop point.
	Confidence float64
}

// Build ranks the partitions and predicts the stop point. The ordering is
// deterministic given identical statistics: unknown partitions first (their
// population must be measured before any error bound can be declared met),
// then cache-resident partitions (free to fold), then the rest by population
// added per predicted load nanosecond; ties break on ID.
func Build(stats []PartitionStat, b Bounds, cfg Config) QueryPlan {
	z := 1.959963984540054 // 0.95 default
	if cfg.Confidence != 0 {
		if zc, err := estimate.ZCrit(cfg.Confidence); err == nil {
			z = zc
		}
	}

	// Footprint-proportional cost fallback, calibrated from measured EWMAs.
	nsPerByte := calibrate(stats)
	steps := make([]Step, len(stats))
	p := QueryPlan{Bounds: b}
	for i, st := range stats {
		steps[i] = Step{Stat: st, CostNS: predictCost(st, nsPerByte)}
		if st.Known {
			p.TotalPop += st.ParentSize
		} else {
			p.Unknown++
		}
	}
	sort.SliceStable(steps, func(i, j int) bool {
		x, y := steps[i], steps[j]
		if rx, ry := rank(x), rank(y); rx != ry {
			return rx < ry
		}
		// Within a rank class, more predicted contribution per cost first.
		// Compare cross-multiplied to avoid dividing by zero-cost cached
		// entries. Weighted stats switch to float compare; the unweighted
		// path keeps exact integer arithmetic.
		wx, wy := weightOf(x.Stat), weightOf(y.Stat)
		if wx == 1 && wy == 1 {
			px := x.Stat.ParentSize * maxi64(y.CostNS, 1)
			py := y.Stat.ParentSize * maxi64(x.CostNS, 1)
			if px != py {
				return px > py
			}
		} else {
			px := wx * float64(x.Stat.ParentSize) * float64(maxi64(y.CostNS, 1))
			py := wy * float64(y.Stat.ParentSize) * float64(maxi64(x.CostNS, 1))
			if px != py {
				return px > py
			}
		}
		return x.Stat.ID < y.Stat.ID
	})
	p.Steps = steps

	// Simulate the fold in plan order with the proxy interval: merged size
	// is conservatively min(sample sizes folded so far) — exact for pairwise
	// HR merges, conservative for HB/SB — and coverage is the summed
	// population. The executor re-predicts as real numbers arrive.
	p.PredictedStop = len(steps)
	predicted := false
	if b.MaxErr > 0 && p.Unknown == 0 {
		var n, pop, ns int64
		for i, st := range steps {
			n = mergedSize(n, st.Stat.SampleSize)
			pop += st.Stat.ParentSize
			ns += st.CostNS
			if estimate.ProxyHalfWidthZ(n, pop, p.TotalPop, z) <= b.MaxErr {
				p.PredictedStop = i + 1
				p.PredictedPop = pop
				p.PredictedNS = ns
				predicted = true
				break
			}
		}
	}
	if !predicted {
		for _, st := range steps {
			p.PredictedPop += st.Stat.ParentSize
			p.PredictedNS += st.CostNS
		}
	}
	return p
}

// NeededFrom predicts how many of the steps from index idx onward the
// executor still needs to fold — given the current merged sample size curN
// and covered population curPop — before the proxy interval meets MaxErr.
// It returns at least 1 while steps remain (the executor always makes
// progress) and len(Steps)−idx when the bound is never predicted met. The
// executor uses it to size load waves so a bounded query does not overshoot
// by a full worker-pool round.
func (p QueryPlan) NeededFrom(idx int, curN, curPop int64, z float64) int {
	remaining := len(p.Steps) - idx
	if remaining <= 0 {
		return 0
	}
	if p.Bounds.MaxErr <= 0 {
		return remaining
	}
	// Populations measured at execution time can exceed the plan-time total
	// (unknown partitions backfilled); keep the denominator consistent.
	total := p.TotalPop
	if curPop > total {
		total = curPop
	}
	n, pop := curN, curPop
	for i := idx; i < len(p.Steps); i++ {
		st := p.Steps[i].Stat
		n = mergedSize(n, st.SampleSize)
		pop += st.ParentSize
		if estimate.ProxyHalfWidthZ(n, pop, total, z) <= p.Bounds.MaxErr {
			if i-idx+1 < 1 {
				return 1
			}
			return i - idx + 1
		}
	}
	return remaining
}

// weightOf normalizes a stat's contribution weight: unset (0) plans as 1.
func weightOf(s PartitionStat) float64 {
	if s.Weight <= 0 || s.Weight > 1 {
		return 1
	}
	return s.Weight
}

// rank buckets a step for the primary sort key: unknown < cached < loadable.
func rank(s Step) int {
	switch {
	case !s.Stat.Known:
		return 0
	case s.Stat.Cached:
		return 1
	default:
		return 2
	}
}

// calibrate derives a ns-per-byte cost model from the partitions that have
// measured load EWMAs; 0 means no partition has been measured yet.
func calibrate(stats []PartitionStat) float64 {
	var ns, bytes int64
	for _, st := range stats {
		if st.LoadNS > 0 && st.Footprint > 0 {
			ns += st.LoadNS
			bytes += st.Footprint
		}
	}
	if bytes == 0 {
		return 0
	}
	return float64(ns) / float64(bytes)
}

// predictCost predicts one partition's load cost in nanoseconds. With no
// EWMA anywhere, the raw footprint stands in as a relative cost — wrong in
// units but right for ranking.
func predictCost(st PartitionStat, nsPerByte float64) int64 {
	switch {
	case st.Cached:
		return 0
	case st.LoadNS > 0:
		return st.LoadNS
	case nsPerByte > 0:
		return int64(nsPerByte * float64(st.Footprint))
	default:
		return st.Footprint
	}
}

// mergedSize folds one more partition sample into the predicted merged size:
// pairwise merging bounds the result by the smaller input (HRMerge takes
// k = min(|S1|,|S2|); HB/SB re-equalized rates land near the same bound).
func mergedSize(cur, next int64) int64 {
	if cur == 0 {
		return next
	}
	if next < cur {
		return next
	}
	return cur
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
