// Package samplewh is a warehouse for sampled data, implementing the
// algorithms of Brown & Haas, "Techniques for Warehousing of Sample Data"
// (ICDE 2006).
//
// A full-scale data warehouse holds many data sets — bags of values — whose
// contents arrive in batches or streams and are divided into disjoint
// partitions. This library maintains, for every partition, a compact,
// bounded-footprint, statistically uniform random sample, and can merge
// per-partition samples into a uniform sample of any union of partitions:
//
//	cfg := samplewh.ConfigForNF(8192)         // footprint for 8192 values
//	s := samplewh.NewHRSampler[int64](cfg, 1) // seed 1
//	for _, v := range values {
//	    s.Feed(v)
//	}
//	sample, _ := s.Finalize()
//
// Two hybrid samplers are provided. Algorithm HB (NewHBSampler) starts with
// an exact compact histogram, degrades to Bernoulli sampling at the rate
// q(N, p, n_F) of the paper's equation (1), and falls back to reservoir
// sampling only in the unlikely event the Bernoulli sample overflows; its
// samples merge very cheaply. Algorithm HR (NewHRSampler) degrades directly
// to reservoir sampling; it needs no advance knowledge of the partition size
// and always delivers exactly n_F elements once the bound is hit, at the
// cost of a hypergeometric-split merge (HRMerge, Theorem 1 of the paper).
//
// The Warehouse type organizes partition samples per data set on top of a
// pluggable Store (in-memory or file-backed), supporting roll-in/roll-out
// and on-demand merged samples of arbitrary partition subsets, and the
// estimate API answers approximate COUNT/SUM/AVG/quantile/distinct queries
// with confidence intervals from any uniform sample.
//
// All randomness is deterministic given a seed; parallel samplers split
// independent random streams.
package samplewh

import (
	"net/http"

	"samplewh/internal/core"
	"samplewh/internal/estimate"
	"samplewh/internal/fullwh"
	"samplewh/internal/histogram"
	"samplewh/internal/obs"
	"samplewh/internal/plan"
	"samplewh/internal/randx"
	"samplewh/internal/samplecache"
	"samplewh/internal/server"
	"samplewh/internal/sketch"
	"samplewh/internal/storage"
	"samplewh/internal/stream"
	"samplewh/internal/wal"
	"samplewh/internal/warehouse"
	"samplewh/internal/workload"
)

// RNG is the deterministic splittable random number generator used by all
// samplers (PCG-XSL-RR 128/64).
type RNG = randx.RNG

// NewRNG returns a deterministically seeded generator.
func NewRNG(seed uint64) *RNG { return randx.New(seed) }

// Source is the randomness interface consumed by samplers and merges.
type Source = randx.Source

// Config carries the footprint bound F, the compact-representation size
// model, and the exceedance probability p of the paper's equation (1).
type Config = core.Config

// ConfigForNF builds a Config admitting nf sample values under the default
// size model (8-byte values, 4-byte counts), mirroring the paper's
// n_F = 8192 setup.
func ConfigForNF(nf int64) Config { return core.ConfigForNF(nf) }

// SizeModel prices the compact (value, count) representation.
type SizeModel = histogram.SizeModel

// Histogram is the compact multiset representation samples are stored in.
type Histogram[V comparable] = histogram.Histogram[V]

// Kind records the statistical nature of a finalized sample.
type Kind = core.Kind

// Sample kinds.
const (
	Exhaustive    = core.Exhaustive
	BernoulliKind = core.BernoulliKind
	ReservoirKind = core.ReservoirKind
)

// Sample is a finalized, mergeable, self-describing partition sample.
type Sample[V comparable] = core.Sample[V]

// Sampler is the shared contract of all partition samplers.
type Sampler[V comparable] = core.Sampler[V]

// HB is the paper's Algorithm HB (hybrid Bernoulli) sampler.
type HB[V comparable] = core.HB[V]

// HR is the paper's Algorithm HR (hybrid reservoir) sampler.
type HR[V comparable] = core.HR[V]

// SB is the fixed-rate stratified Bernoulli baseline (Algorithm SB).
type SB[V comparable] = core.SB[V]

// ConciseSampler is the Gibbons–Matias concise sampling baseline; the paper
// proves it is not uniform (§3.3).
type ConciseSampler[V comparable] = core.ConciseSampler[V]

// CountingSampler is the deletion-capable counting-sample baseline.
type CountingSampler[V comparable] = core.CountingSampler[V]

// NewHBSampler returns an Algorithm HB sampler for a partition of expected
// size expectedN, seeded deterministically.
func NewHBSampler[V comparable](cfg Config, expectedN int64, seed uint64) *HB[V] {
	return core.NewHB[V](cfg, expectedN, randx.New(seed))
}

// NewHRSampler returns an Algorithm HR sampler, seeded deterministically.
func NewHRSampler[V comparable](cfg Config, seed uint64) *HR[V] {
	return core.NewHR[V](cfg, randx.New(seed))
}

// NewSBSampler returns a fixed-rate Bern(q) sampler, seeded
// deterministically.
func NewSBSampler[V comparable](cfg Config, q float64, seed uint64) *SB[V] {
	return core.NewSB[V](cfg, q, randx.New(seed))
}

// NewConciseSampler returns a concise sampler (purgeFactor 0 selects the
// default 0.8), seeded deterministically.
func NewConciseSampler[V comparable](cfg Config, purgeFactor float64, seed uint64) *ConciseSampler[V] {
	return core.NewConcise[V](cfg, purgeFactor, randx.New(seed))
}

// HBState is the serializable checkpoint of an in-progress HB sampler.
type HBState[V comparable] = core.HBState[V]

// HRState is the serializable checkpoint of an in-progress HR sampler.
type HRState[V comparable] = core.HRState[V]

// ResumeHB reconstructs an Algorithm HB sampler from a checkpoint captured
// with (*HB).Checkpoint; the resumed sampler continues the exact random
// sequence of the original.
func ResumeHB[V comparable](st HBState[V]) (*HB[V], error) {
	return core.ResumeHBFromState(st)
}

// ResumeHR reconstructs an Algorithm HR sampler from a checkpoint captured
// with (*HR).Checkpoint.
func ResumeHR[V comparable](st HRState[V]) (*HR[V], error) {
	return core.ResumeHRFromState(st)
}

// QApprox is the paper's equation (1): the Bernoulli rate for Algorithm HB.
func QApprox(n int64, p float64, nf int64) float64 { return core.QApprox(n, p, nf) }

// QExact solves for the exact rate by bisection (ground truth for QApprox).
func QExact(n int64, p float64, nf int64, tol float64) float64 {
	return core.QExact(n, p, nf, tol)
}

// Merge combines two samples of disjoint partitions into a uniform sample
// of the union, dispatching on the samples' kinds. Inputs are consumed.
func Merge[V comparable](s1, s2 *Sample[V], src Source) (*Sample[V], error) {
	return core.Merge(s1, s2, src)
}

// HBMerge is the paper's Figure 6 merge for Algorithm HB samples.
func HBMerge[V comparable](s1, s2 *Sample[V], src Source) (*Sample[V], error) {
	return core.HBMerge(s1, s2, src)
}

// HRMerge is the paper's Figure 8 merge for Algorithm HR samples
// (hypergeometric split, Theorem 1).
func HRMerge[V comparable](s1, s2 *Sample[V], src Source) (*Sample[V], error) {
	return core.HRMerge(s1, s2, src)
}

// SBMerge unions Bernoulli samples, equalizing rates if they differ.
func SBMerge[V comparable](s1, s2 *Sample[V], src Source) (*Sample[V], error) {
	return core.SBMerge(s1, s2, src)
}

// MergeFunc is the signature shared by the pairwise merges.
type MergeFunc[V comparable] = core.MergeFunc[V]

// MergeSerial folds samples with a left-deep chain of pairwise merges.
func MergeSerial[V comparable](samples []*Sample[V], merge MergeFunc[V], src Source) (*Sample[V], error) {
	return core.MergeSerial(samples, merge, src)
}

// MergeTree folds samples with a balanced binary tree of pairwise merges.
func MergeTree[V comparable](samples []*Sample[V], merge MergeFunc[V], src Source) (*Sample[V], error) {
	return core.MergeTree(samples, merge, src)
}

// MergeToSize merges two samples into a simple random sample of exactly k
// elements of the union (any k up to min(|S1|,|S2|); Theorem 1 generalized).
func MergeToSize[V comparable](s1, s2 *Sample[V], k int64, src Source) (*Sample[V], error) {
	return core.MergeToSize(s1, s2, k, src)
}

// MergeTreeParallel is MergeTree with each level's independent pairwise
// merges executed concurrently. Randomness is pre-assigned per tree position,
// so the result is byte-identical to the sequential MergeTree for the same
// seed, at any parallelism.
func MergeTreeParallel[V comparable](samples []*Sample[V], merge MergeFunc[V], src Source, parallelism int) (*Sample[V], error) {
	return core.MergeTreeParallel(samples, merge, src, parallelism)
}

// Stratified is a stratified random sample: per-partition uniform samples
// kept separate (paper §4.1), queried with stratified-expansion estimators.
type Stratified[V comparable] = core.Stratified[V]

// NewStratified assembles a stratified sample from per-partition samples.
func NewStratified[V comparable](samples ...*Sample[V]) (*Stratified[V], error) {
	return core.NewStratified(samples...)
}

// NewStratifiedEstimator builds the stratified-expansion estimator.
func NewStratifiedEstimator[V comparable](st *Stratified[V]) (*estimate.StratifiedEstimator[V], error) {
	return estimate.NewStratified(st)
}

// UnionBernoulli unions Bernoulli samples of disjoint partitions without a
// footprint bound, equalizing rates if needed (paper §4.1).
func UnionBernoulli[V comparable](samples []*Sample[V], src Source) (*Sample[V], error) {
	return core.UnionBernoulli(samples, src)
}

// SymmetricMerger caches alias tables across repeated symmetric HR merges
// (paper §4.2); use its Merge method with MergeTree.
type SymmetricMerger[V comparable] = core.SymmetricMerger[V]

// NewSymmetricMerger returns a merger with an empty alias-table cache.
func NewSymmetricMerger[V comparable]() *SymmetricMerger[V] {
	return core.NewSymmetricMerger[V]()
}

// SystematicSampler is 1-in-k systematic sampling with a random start — one
// of the paper's §6 future-work designs (not uniform; see its doc).
type SystematicSampler[V comparable] = core.SystematicSampler[V]

// NewSystematicSampler returns a 1-in-k systematic sampler.
func NewSystematicSampler[V comparable](cfg Config, k int64, seed uint64) *SystematicSampler[V] {
	return core.NewSystematic[V](cfg, k, randx.New(seed))
}

// WeightedReservoir is biased (weighted) bounded sampling via
// Efraimidis–Spirakis A-Res — the paper's §6 "biased sampling" design.
type WeightedReservoir[V comparable] = core.WeightedReservoir[V]

// NewWeightedReservoir returns a size-k weighted reservoir sampler.
func NewWeightedReservoir[V comparable](cfg Config, k int64, seed uint64) *WeightedReservoir[V] {
	return core.NewWeightedReservoir[V](cfg, k, randx.New(seed))
}

// MergeWeighted merges weighted reservoirs of disjoint partitions exactly.
func MergeWeighted[V comparable](a, b *WeightedReservoir[V]) (*WeightedReservoir[V], error) {
	return core.MergeWeighted(a, b)
}

// Warehouse organizes per-partition samples by data set with roll-in,
// roll-out, windowing and on-demand merged samples (int64 values; use
// GenericWarehouse for other value types).
type Warehouse = warehouse.Warehouse[int64]

// GenericWarehouse is the warehouse over an arbitrary comparable value type.
type GenericWarehouse[V comparable] = warehouse.Warehouse[V]

// DatasetConfig describes one data set's sampling regime.
type DatasetConfig = warehouse.DatasetConfig

// Algorithm selects a data set's sampler/merge family.
type Algorithm = warehouse.Algorithm

// Warehouse algorithm choices.
const (
	AlgHB = warehouse.AlgHB
	AlgHR = warehouse.AlgHR
	AlgSB = warehouse.AlgSB
)

// NewWarehouse creates an int64-valued warehouse over store.
func NewWarehouse(store Store, seed uint64) *Warehouse { return warehouse.New[int64](store, seed) }

// NewGenericWarehouse creates a warehouse over any comparable value type.
func NewGenericWarehouse[V comparable](store storage.Store[V], seed uint64) *GenericWarehouse[V] {
	return warehouse.New[V](store, seed)
}

// RecoveryReport describes what a warehouse recovery reconciled: the catalog
// it restored plus any dangling partitions dropped and orphan keys found.
type RecoveryReport = warehouse.RecoveryReport

// OpenWarehouse opens a durable int64-valued warehouse over store: the
// catalog (data set configurations and partition lists) is persisted as a
// manifest in the store and restored — reconciled against the store's actual
// contents — on every open. The store must support blob metadata (the
// built-in memory and file stores do).
func OpenWarehouse(store Store, seed uint64) (*Warehouse, *RecoveryReport, error) {
	return warehouse.Open[int64](store, seed)
}

// OpenGenericWarehouse is OpenWarehouse over any comparable value type.
func OpenGenericWarehouse[V comparable](store storage.Store[V], seed uint64) (*GenericWarehouse[V], *RecoveryReport, error) {
	return warehouse.Open[V](store, seed)
}

// SkippedPartition names one partition a partial merge left out, with why.
type SkippedPartition = warehouse.SkippedPartition

// MergeCoverage reports which of a partial merge's requested partitions made
// it into the result and which were skipped.
type MergeCoverage = warehouse.MergeCoverage

// QueryBounds carries a bounded query's targets: a fraction-scale error
// bound and/or a merge time budget (DESIGN.md §14). The zero value runs the
// ordinary full merge.
type QueryBounds = plan.Bounds

// PlannedQuery configures Warehouse.MergedSamplePlanned: the bounds, the
// planner confidence and the half-width evaluator driving early stop.
type PlannedQuery[V comparable] = warehouse.PlannedQuery[V]

// PlanExecution reports how a bounded merge ran: the chosen plan, partitions
// loaded versus pruned, the stop reason and the achieved half-width.
type PlanExecution = warehouse.PlanExecution

// PartitionStats is one entry of the warehouse's per-partition statistics
// registry feeding the query planner.
type PartitionStats = warehouse.PartitionStats

// BoundedFraction estimates the fraction of the FULL population (totalPop
// values) satisfying pred from a sample covering possibly fewer: the interval
// carries the uncovered remainder's worst case, so it is honest under
// planner pruning and degraded coverage.
func BoundedFraction[V comparable](s *Sample[V], pred func(V) bool, confidence float64, totalPop int64) (Estimate, error) {
	return estimate.BoundedFraction(s, pred, confidence, totalPop)
}

// BoundedCount is BoundedFraction scaled to a count of the full population.
func BoundedCount[V comparable](s *Sample[V], pred func(V) bool, confidence float64, totalPop int64) (Estimate, error) {
	return estimate.BoundedCount(s, pred, confidence, totalPop)
}

// SketchSummary is a partition's mergeable summary sidecar: count, min/max,
// first two moments, a KMV distinct sketch and a space-saving heavy-hitter
// table (DESIGN.md §15). Sidecars are built at roll-in, persisted in the
// manifest, and drive prove-pruning of range queries, planner ranking and
// sketch-assisted distinct/topk answers.
type SketchSummary = sketch.Summary

// HeavyHit is one space-saving counter of a sketch's heavy-hitter table:
// Value occurred at least Count-Err and at most Count times.
type HeavyHit = sketch.HeavyHit

// NewSketchBuilder streams values into a sketch sidecar; pass its Summary
// to Warehouse.RollInSketched so the sidecar states facts about the full
// partition rather than the stored sample.
func NewSketchBuilder() *sketch.Builder { return sketch.NewBuilder() }

// SketchFromSample derives a sidecar from a stored sample (the RollIn
// default and the fsck -fix rebuild path).
func SketchFromSample(s *Sample[int64]) *sketch.Summary { return sketch.FromSample(s) }

// MergeSketches unions sidecars; the result is identical to a single-pass
// sketch of the underlying union, so any merge topology is sound.
func MergeSketches(sums ...*SketchSummary) *SketchSummary { return sketch.MergeAll(sums...) }

// SketchRange is the value range a planned query proves partitions in or
// out of via their sidecars.
type SketchRange = warehouse.SketchRange

// SketchFsckReport summarizes one sidecar audit (swcli fsck's sketch pass).
type SketchFsckReport = warehouse.SketchFsckReport

// FsckSketches audits a store's manifest sketch sidecars offline, rebuilding
// defective ones from the stored samples when fix is set.
func FsckSketches(store Store, fix bool) (*SketchFsckReport, error) {
	return warehouse.FsckSketches(store, fix)
}

// ZeroStratum is a prove-pruned partition's contribution to a stratified
// estimate: zero matches over a known population, exactly.
type ZeroStratum = estimate.ZeroStratum

// BoundedFractionProvenZero extends BoundedFraction with provenZero rows
// proven (via sketch sidecars) to contain no matches: they count toward the
// denominator with zero uncertainty, so pruning never widens the interval.
func BoundedFractionProvenZero[V comparable](s *Sample[V], pred func(V) bool, confidence float64, totalPop, provenZero int64) (Estimate, error) {
	return estimate.BoundedFractionProvenZero(s, pred, confidence, totalPop, provenZero)
}

// BoundedCountProvenZero is BoundedFractionProvenZero scaled to a count.
func BoundedCountProvenZero[V comparable](s *Sample[V], pred func(V) bool, confidence float64, totalPop, provenZero int64) (Estimate, error) {
	return estimate.BoundedCountProvenZero(s, pred, confidence, totalPop, provenZero)
}

// QueryConfig tunes the warehouse read path: the decoded-sample cache budget
// (bytes of sample footprint; 0 disables caching), the partition-load worker
// pool, and the merge-tree parallelism. Apply with Warehouse.SetQueryConfig.
type QueryConfig = warehouse.QueryConfig

// CacheStats is a point-in-time snapshot of the read-path sample cache
// counters, returned by Warehouse.CacheStats.
type CacheStats = samplecache.Stats

// GenericStore is the persistence contract for warehouses over arbitrary
// value types.
type GenericStore[V comparable] = storage.Store[V]

// NewGenericMemStore returns an in-memory store for any value type.
func NewGenericMemStore[V comparable]() GenericStore[V] { return storage.NewMemStore[V]() }

// Store is the persistence contract for int64-valued sample warehouses.
type Store = storage.Store[int64]

// NewMemStore returns an in-memory store.
func NewMemStore() Store { return storage.NewMemStore[int64]() }

// NewFileStore returns a file-backed store rooted at dir.
func NewFileStore(dir string) (Store, error) {
	return storage.NewFileStore[int64](dir, storage.Int64Codec{})
}

// RetryPolicy configures RetryStore backoff: attempt budget, capped
// exponential delay and jitter.
type RetryPolicy = storage.RetryPolicy

// NewRetryStore wraps an int64-valued store so transient failures are
// retried under capped exponential backoff with jitter; permanent failures
// (missing keys, corruption) pass straight through.
func NewRetryStore(inner Store, pol RetryPolicy) Store {
	return storage.NewRetryStore[int64](inner, pol)
}

// NewGenericRetryStore is NewRetryStore over any comparable value type.
func NewGenericRetryStore[V comparable](inner storage.Store[V], pol RetryPolicy) storage.Store[V] {
	return storage.NewRetryStore[V](inner, pol)
}

// IsNotFound reports whether err is a missing-key store error.
func IsNotFound(err error) bool { return storage.IsNotFound(err) }

// IsCorrupt reports whether err marks data that failed checksum or decode
// validation (the file store quarantines such files as *.corrupt).
func IsCorrupt(err error) bool { return storage.IsCorrupt(err) }

// IsRetryable reports whether err is transient — worth retrying. Missing
// keys, corruption and unclassified errors are permanent.
func IsRetryable(err error) bool { return storage.IsRetryable(err) }

// Estimate is a point estimate with a confidence interval.
type Estimate = estimate.Estimate

// Estimator answers approximate queries over one sample.
type Estimator[V comparable] = estimate.Estimator[V]

// NewEstimator builds a 95%-confidence estimator over a sample.
func NewEstimator[V comparable](s *Sample[V]) *Estimator[V] { return estimate.New(s) }

// NewEstimatorWithConfidence builds an estimator at the given confidence
// level (0.90, 0.95 or 0.99).
func NewEstimatorWithConfidence[V comparable](s *Sample[V], confidence float64) (*Estimator[V], error) {
	return estimate.NewWithConfidence(s, confidence)
}

// OrderedEstimator answers order-dependent queries (quantiles, median,
// equi-depth histograms) over one sample.
type OrderedEstimator[V comparable] = estimate.OrderedEstimator[V]

// NewOrderedEstimator adds quantile queries given a total order on values.
func NewOrderedEstimator[V comparable](s *Sample[V], less func(a, b V) bool) (*OrderedEstimator[V], error) {
	return estimate.NewOrdered(s, less)
}

// FreqEntry is one TopK value with its estimated data-set frequency.
type FreqEntry[V comparable] = estimate.FreqEntry[V]

// Resemblance holds value-set overlap estimates between two samples
// (Jaccard and containment), returned by ValueSetResemblance.
type Resemblance = estimate.Resemblance

// DiffEstimate returns the estimated difference a − b between estimates from
// independent samples, with standard errors combined in quadrature.
func DiffEstimate(a, b Estimate) Estimate { return estimate.Diff(a, b) }

// GroupResult is one group's estimated aggregate from GroupBy.
type GroupResult[K comparable] = estimate.GroupResult[K]

// GroupBy estimates a GROUP BY COUNT(*) with per-group confidence intervals.
func GroupBy[V comparable, K comparable](e *Estimator[V], key func(V) K) ([]GroupResult[K], error) {
	return estimate.GroupBy(e, key)
}

// JoinSizeEstimate estimates the equality-join size |A ⋈ B| from two
// samples (a lower-bound-leaning plug-in estimator; see its doc).
func JoinSizeEstimate[V comparable](a, b *Sample[V]) (float64, error) {
	return estimate.JoinSizeEstimate(a, b)
}

// ValueSetResemblance estimates distinct-value overlap between two samples
// (Jaccard and containment), the metadata-discovery primitive.
func ValueSetResemblance[V comparable](a, b *Sample[V]) (estimate.Resemblance, error) {
	return estimate.ValueSetResemblance(a, b)
}

// FullWarehouse is a miniature full-scale data warehouse (the left side of
// the paper's Figure 1): file-backed partitions of raw values with exact
// scan queries — the slow ground truth the sample warehouse shadows.
type FullWarehouse = fullwh.Warehouse

// OpenFullWarehouse opens (creating if necessary) a full warehouse at dir.
func OpenFullWarehouse(dir string) (*FullWarehouse, error) { return fullwh.Open(dir) }

// Shadow ties a full warehouse to a sample warehouse: every ingested batch
// is written to the full side while being sampled, and the bounded sample
// rolls into the shadow side under the same key.
type Shadow = fullwh.Shadow

// NewShadow pairs a full warehouse with its sample warehouse.
func NewShadow(full *FullWarehouse, samples *Warehouse) *Shadow {
	return fullwh.NewShadow(full, samples)
}

// SamplerFactory builds the sampler for partition index i covering expectedN
// elements. The stream package is generic over the value type (see
// stream.SamplerFactory); this alias keeps the facade's historical int64
// signature.
type SamplerFactory = stream.SamplerFactory[int64]

// Splitter fans one stream out over parallel samplers.
type Splitter = stream.Splitter[int64]

// NewSplitter builds a splitter over w samplers created by factory.
func NewSplitter(w int, factory SamplerFactory) *Splitter {
	return stream.NewSplitter(w, factory)
}

// TemporalPartitioner cuts a stream into fixed-length partitions.
type TemporalPartitioner = stream.TemporalPartitioner[int64]

// NewTemporalPartitioner cuts a partition after every `every` values.
func NewTemporalPartitioner(every int64, factory SamplerFactory) *TemporalPartitioner {
	return stream.NewTemporalPartitioner(every, factory)
}

// RatioPartitioner finalizes a partition whenever the sampling fraction
// would drop below a lower bound (paper §2's on-the-fly partitioning).
type RatioPartitioner = stream.RatioPartitioner[int64]

// NewRatioPartitioner builds a ratio-triggered partitioner.
func NewRatioPartitioner(minFraction float64, minSize int64, factory SamplerFactory) (*RatioPartitioner, error) {
	return stream.NewRatioPartitioner(minFraction, minSize, factory)
}

// Metrics is the observability registry: atomic counters, gauges, bounded
// latency histograms and structured event tracing, with nil-safe no-op
// semantics throughout (a nil *Metrics leaves every component
// uninstrumented at no measurable cost). Route a component into a registry
// with its Instrument method — samplers, warehouses, stores, splitters and
// partitioners all have one.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsSnapshot is a point-in-time copy of every metric in a registry; it
// marshals to expvar-style JSON and renders a human-readable report via
// String.
type MetricsSnapshot = obs.Snapshot

// HistogramSummary is the exported distribution snapshot of one latency or
// size histogram.
type HistogramSummary = obs.HistogramSummary

// Event is one structured trace record (phase transition, purge, roll-in,
// merge, ...).
type Event = obs.Event

// EventSink receives emitted events; implementations must be safe for
// concurrent use and must not block.
type EventSink = obs.EventSink

// FuncSink adapts a function to the EventSink interface.
type FuncSink = obs.FuncSink

// MemorySink retains the most recent events in a fixed-capacity ring buffer.
type MemorySink = obs.MemorySink

// NewMemorySink returns a sink retaining up to capacity events.
func NewMemorySink(capacity int) *MemorySink { return obs.NewMemorySink(capacity) }

// Event types emitted by the instrumented stack.
const (
	EvPhaseTransition = obs.EvPhaseTransition
	EvPurge           = obs.EvPurge
	EvFinalize        = obs.EvFinalize
	EvRollIn          = obs.EvRollIn
	EvRollOut         = obs.EvRollOut
	EvMerge           = obs.EvMerge
	EvPartitionCut    = obs.EvPartitionCut
	EvError           = obs.EvError
	EvRetry           = obs.EvRetry
	EvQuarantine      = obs.EvQuarantine
	EvPartialMerge    = obs.EvPartialMerge
	EvRecovery        = obs.EvRecovery
	EvCacheEvict      = obs.EvCacheEvict
	EvShed            = obs.EvShed
	EvDrain           = obs.EvDrain
)

// defaultMetrics backs DefaultMetrics and Snapshot for single-registry
// programs.
var defaultMetrics = obs.NewRegistry()

// DefaultMetrics returns the package-level registry, for programs that want
// one shared registry without plumbing. Components must still be routed into
// it explicitly via their Instrument methods.
func DefaultMetrics() *Metrics { return defaultMetrics }

// Snapshot copies the current state of the package-level registry.
func Snapshot() MetricsSnapshot { return defaultMetrics.Snapshot() }

// InstrumentStore routes a store's metrics into reg when the concrete store
// supports instrumentation (the built-in memory and file stores do). It
// reports whether the store was instrumented.
func InstrumentStore[V comparable](s storage.Store[V], reg *Metrics) bool {
	in, ok := s.(interface{ Instrument(*obs.Registry) })
	if ok {
		in.Instrument(reg)
	}
	return ok
}

// Server serves an int64-valued warehouse over HTTP/JSON with admission
// control (bounded queue + load shedding), per-request deadlines propagated
// into the merge path, approximate-query endpoints with confidence intervals
// and merge coverage, and graceful drain. Mount Handler() on an http.Server;
// see cmd/swd for the full daemon.
type Server = server.Server

// ServerConfig tunes a Server's deadlines, per-class concurrency limits,
// admission queue and instrumentation.
type ServerConfig = server.Config

// NewServer builds a Server over an int64-valued warehouse.
func NewServer(w *Warehouse, cfg ServerConfig) *Server { return server.New(w, cfg) }

// ServerClient is the Go client for a running Server/swd.
type ServerClient = server.Client

// NewServerClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8385"); httpc nil selects http.DefaultClient.
func NewServerClient(base string, httpc *http.Client) *ServerClient {
	return server.NewClient(base, httpc)
}

// IsShed reports whether err (from a ServerClient call) is a 429 load-shed
// response; its APIError carries the server's Retry-After hint.
func IsShed(err error) bool { return server.IsShed(err) }

// ClientRetryPolicy tunes a ServerClient's automatic retries of shed (429)
// and transient 5xx responses for idempotent requests: capped jittered
// backoff, Retry-After honored, bounded by the request context. NewClient
// installs server.DefaultRetryPolicy(); server.NoRetry() disables it.
type ClientRetryPolicy = server.RetryPolicy

// IngestJournal is the segmented write-ahead ingest journal: configure one
// on ServerConfig.Journal to make acknowledged ingest batches crash-durable
// (see cmd/swd and DESIGN.md §11).
type IngestJournal = wal.Log[int64]

// ClusterConfig switches a Server into fault-tolerant cluster mode via
// Server.EnableCluster: static peer membership, consistent-hash partition
// placement with replication, replicated scatter-gather queries with hedged
// requests and per-peer circuit breakers, and degraded-coverage answers when
// shards are unreachable (see cmd/swd -peers and DESIGN.md §13).
type ClusterConfig = server.ClusterConfig

// ClusterBreakerConfig tunes the per-peer circuit breakers of a clustered
// Server (rolling failure window, open duration, half-open probing).
type ClusterBreakerConfig = server.BreakerConfig

// WorkloadSpec describes a synthetic data set (the paper's unique, uniform
// and Zipfian evaluation workloads).
type WorkloadSpec = workload.Spec

// Workload distributions.
const (
	WorkloadUnique  = workload.Unique
	WorkloadUniform = workload.Uniform
	WorkloadZipfian = workload.Zipfian
)

// NewWorkload returns a generator over the whole synthetic data set.
func NewWorkload(spec WorkloadSpec) *workload.Generator { return workload.New(spec) }

// WorkloadPartitions returns one generator per contiguous partition.
func WorkloadPartitions(spec WorkloadSpec, parts int) []*workload.Generator {
	return workload.Partitions(spec, parts)
}
