module samplewh

go 1.24
