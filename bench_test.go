// Benchmarks regenerating every figure of the paper's evaluation (§5) at
// benchmark-friendly scale, plus ablation benches for the design choices
// called out in DESIGN.md. The full-scale figures are produced by
// cmd/swbench (swbench -exp all -full); these benches exercise the same
// pipelines under testing.B so the shapes can be tracked continuously.
//
// Naming: BenchmarkFig<N>... corresponds to paper Figure <N>.
package samplewh

import (
	"fmt"
	"testing"

	"samplewh/internal/core"
	"samplewh/internal/experiments"
	"samplewh/internal/obs"
	"samplewh/internal/randx"
	"samplewh/internal/workload"
)

// benchOpts are the shared figure-bench parameters: n_F = 8192 as in the
// paper, single run per measurement.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Runs: 1, NF: 8192, P: 0.001}
}

// benchPipeline runs the partition-sample-merge pipeline once per iteration
// and reports elements/op plus the split of sampling vs merging time.
func benchPipeline(b *testing.B, alg experiments.Alg, dist workload.Distribution, n int64, parts int) {
	b.Helper()
	rng := randx.New(7)
	opt := benchOpts()
	var sampleNS, mergeNS, size float64
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPipeline(alg, dist, n, parts, opt, rng)
		if err != nil {
			b.Fatal(err)
		}
		sampleNS += float64(res.SampleTime.Nanoseconds())
		mergeNS += float64(res.MergeTime.Nanoseconds())
		size += float64(res.Merged.Size())
	}
	b.ReportMetric(sampleNS/float64(b.N), "sample-ns/op")
	b.ReportMetric(mergeNS/float64(b.N), "merge-ns/op")
	b.ReportMetric(size/float64(b.N), "sample-size")
}

// BenchmarkFig5QRate regenerates Figure 5's grid: the closed-form
// approximation (1) evaluated across the paper's parameter grid, with the
// exact-bisection ground truth compared once per grid point.
func BenchmarkFig5QRate(b *testing.B) {
	ps := []float64{0.00001, 0.0001, 0.001, 0.005}
	nfs := []int64{100, 1000, 10000}
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range ps {
				for _, nf := range nfs {
					_ = core.QApprox(100000, p, nf)
				}
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range ps {
				for _, nf := range nfs {
					_ = core.QExact(100000, p, nf, 1e-12)
				}
			}
		}
	})
	b.Run("relerr-grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maxErr := 0.0
			for _, p := range ps {
				for _, nf := range nfs {
					if e := core.QApproxRelError(100000, p, nf); e > maxErr {
						maxErr = e
					}
				}
			}
			if maxErr > 0.03 {
				b.Fatalf("relative error %v exceeds the paper's 3%% bound", maxErr)
			}
		}
	})
}

// speedupBench parameterizes one speedup figure: fixed 2^20 unique-value
// population, partition count swept as in Figures 9–11.
func speedupBench(b *testing.B, alg experiments.Alg) {
	for _, parts := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			benchPipeline(b, alg, workload.Unique, 1<<20, parts)
		})
	}
}

// BenchmarkFig9SpeedupSB regenerates Figure 9 (Algorithm SB speedup).
func BenchmarkFig9SpeedupSB(b *testing.B) { speedupBench(b, experiments.AlgSB) }

// BenchmarkFig10SpeedupHB regenerates Figure 10 (Algorithm HB speedup).
func BenchmarkFig10SpeedupHB(b *testing.B) { speedupBench(b, experiments.AlgHB) }

// BenchmarkFig11SpeedupHR regenerates Figure 11 (Algorithm HR speedup).
func BenchmarkFig11SpeedupHR(b *testing.B) { speedupBench(b, experiments.AlgHR) }

// scaleupBench parameterizes one scaleup figure: 32K elements per
// partition, scale factor = partition count, three data distributions as in
// Figures 12–14.
func scaleupBench(b *testing.B, alg experiments.Alg) {
	const per = 32 * 1024
	for _, dist := range []workload.Distribution{workload.Unique, workload.Uniform, workload.Zipfian} {
		for _, scale := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/scale=%d", dist, scale), func(b *testing.B) {
				benchPipeline(b, alg, dist, int64(scale)*per, scale)
			})
		}
	}
}

// BenchmarkFig12ScaleupSB regenerates Figure 12 (Algorithm SB scaleup).
func BenchmarkFig12ScaleupSB(b *testing.B) { scaleupBench(b, experiments.AlgSB) }

// BenchmarkFig13ScaleupHB regenerates Figure 13 (Algorithm HB scaleup).
func BenchmarkFig13ScaleupHB(b *testing.B) { scaleupBench(b, experiments.AlgHB) }

// BenchmarkFig14ScaleupHR regenerates Figure 14 (Algorithm HR scaleup).
func BenchmarkFig14ScaleupHR(b *testing.B) { scaleupBench(b, experiments.AlgHR) }

// sampleSizeBench parameterizes Figures 15–16: fixed 32K-element
// partitions, growing partition counts; the interesting metric is the
// reported sample-size.
func sampleSizeBench(b *testing.B, alg experiments.Alg) {
	const per = 32 * 1024
	for _, parts := range []int{1, 8, 32} {
		for _, dist := range []workload.Distribution{workload.Unique, workload.Uniform} {
			b.Run(fmt.Sprintf("%s/parts=%d", dist, parts), func(b *testing.B) {
				benchPipeline(b, alg, dist, int64(parts)*per, parts)
			})
		}
	}
}

// BenchmarkFig15SampleSizeHB regenerates Figure 15 (Algorithm HB merged
// sample sizes; the sample-size metric shrinks below n_F = 8192).
func BenchmarkFig15SampleSizeHB(b *testing.B) { sampleSizeBench(b, experiments.AlgHB) }

// BenchmarkFig16SampleSizeHR regenerates Figure 16 (Algorithm HR merged
// sample sizes; the sample-size metric stays pinned at n_F = 8192).
func BenchmarkFig16SampleSizeHR(b *testing.B) { sampleSizeBench(b, experiments.AlgHR) }

// BenchmarkMergeTreeShape is the DESIGN.md ablation comparing the serial
// left-deep merge chain of the paper's experiments against a balanced
// binary merge tree, for both merge families.
func BenchmarkMergeTreeShape(b *testing.B) {
	const parts = 64
	const per = 16 * 1024
	cfg := core.ConfigForNF(4096)
	build := func(rng *randx.RNG, hb bool) []*core.Sample[int64] {
		gens := workload.Partitions(workload.Spec{Dist: workload.Unique, N: parts * per, Seed: 3}, parts)
		out := make([]*core.Sample[int64], parts)
		for i, g := range gens {
			var smp core.Sampler[int64]
			if hb {
				smp = core.NewHB[int64](cfg, g.Len(), rng.Split())
			} else {
				smp = core.NewHR[int64](cfg, rng.Split())
			}
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				smp.Feed(v)
			}
			s, err := smp.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	for _, c := range []struct {
		name  string
		hb    bool
		merge core.MergeFunc[int64]
		tree  bool
	}{
		{"HR/serial", false, core.HRMerge[int64], false},
		{"HR/tree", false, core.HRMerge[int64], true},
		{"HB/serial", true, core.HBMerge[int64], false},
		{"HB/tree", true, core.HBMerge[int64], true},
	} {
		b.Run(c.name, func(b *testing.B) {
			rng := randx.New(11)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				samples := build(rng, c.hb)
				b.StartTimer()
				var err error
				if c.tree {
					_, err = core.MergeTree(samples, c.merge, rng)
				} else {
					_, err = core.MergeSerial(samples, c.merge, rng)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiPurgeVsHB is the DESIGN.md ablation confirming the paper's
// §4.1 claim that the multiple-purge Bernoulli variant is dominated by
// Algorithm HB.
func BenchmarkMultiPurgeVsHB(b *testing.B) {
	const n = 1 << 18
	cfg := core.ConfigForNF(4096)
	feed := func(smp core.Sampler[int64]) {
		g := workload.New(workload.Spec{Dist: workload.Unique, N: n, Seed: 5})
		for {
			v, ok := g.Next()
			if !ok {
				break
			}
			smp.Feed(v)
		}
		if _, err := smp.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("HB", func(b *testing.B) {
		rng := randx.New(13)
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			// Under-declare N to stress the bound machinery equally.
			feed(core.NewHB[int64](cfg, n/2, rng.Split()))
		}
	})
	b.Run("MultiPurge", func(b *testing.B) {
		rng := randx.New(13)
		b.SetBytes(n * 8)
		for i := 0; i < b.N; i++ {
			feed(core.NewMultiPurge[int64](cfg, n/2, 0, rng.Split()))
		}
	})
}

// BenchmarkHRMergeAliasVsInversion is the DESIGN.md ablation for the §4.2
// optimization: repeated symmetric HR merges drawing the hypergeometric
// split by per-merge inversion (building the pmf every time) versus the
// cached alias table of SymmetricMerger.
func BenchmarkHRMergeAliasVsInversion(b *testing.B) {
	cfg := core.ConfigForNF(8192)
	const per = 64 * 1024
	build := func(rng *randx.RNG) (*core.Sample[int64], *core.Sample[int64]) {
		mk := func(lo int64) *core.Sample[int64] {
			hr := core.NewHR[int64](cfg, rng.Split())
			g := workload.NewRange(workload.Spec{Dist: workload.Unique, N: 2 * per, Seed: 21}, lo, lo+per)
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				hr.Feed(v)
			}
			s, err := hr.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			return s
		}
		return mk(0), mk(per)
	}
	b.Run("inversion", func(b *testing.B) {
		rng := randx.New(23)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s1, s2 := build(rng)
			b.StartTimer()
			if _, err := core.HRMerge(s1, s2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alias-cached", func(b *testing.B) {
		rng := randx.New(23)
		m := core.NewSymmetricMerger[int64]()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s1, s2 := build(rng)
			b.StartTimer()
			if _, err := m.Merge(s1, s2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMergeTreeParallel compares serial and parallel balanced merge
// trees over 64 reservoir samples.
func BenchmarkMergeTreeParallel(b *testing.B) {
	const parts = 64
	const per = 16 * 1024
	cfg := core.ConfigForNF(4096)
	build := func(rng *randx.RNG) []*core.Sample[int64] {
		gens := workload.Partitions(workload.Spec{Dist: workload.Unique, N: parts * per, Seed: 31}, parts)
		out := make([]*core.Sample[int64], parts)
		for i, g := range gens {
			hr := core.NewHR[int64](cfg, rng.Split())
			for {
				v, ok := g.Next()
				if !ok {
					break
				}
				hr.Feed(v)
			}
			s, err := hr.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	for _, par := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("parallelism=%d", par)
		if par == 0 {
			name = "parallelism=max"
		}
		b.Run(name, func(b *testing.B) {
			rng := randx.New(33)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				samples := build(rng)
				b.StartTimer()
				if _, err := core.MergeTreeParallel(samples, core.HRMerge[int64], rng, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstrumentationOverhead measures what the observability layer
// costs on the sampler hot path (HR Feed): nothing when uninstrumented or
// instrumented against a nil registry (the no-op methods compile to nil
// checks), a few atomic adds per element with a live registry, and the same
// with tracing enabled (events only fire at phase boundaries, never per
// element).
func BenchmarkInstrumentationOverhead(b *testing.B) {
	cfg := core.ConfigForNF(8192)
	run := func(b *testing.B, instrument func(*core.HR[int64])) {
		rng := randx.New(41)
		smp := core.NewHR[int64](cfg, rng)
		if instrument != nil {
			instrument(smp)
		}
		b.SetBytes(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			smp.Feed(int64(i))
		}
	}
	b.Run("uninstrumented", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("nil-registry", func(b *testing.B) {
		run(b, func(smp *core.HR[int64]) { smp.Instrument(nil, "p0") })
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func(smp *core.HR[int64]) { smp.Instrument(obs.NewRegistry(), "p0") })
	})
	b.Run("metrics+tracing", func(b *testing.B) {
		run(b, func(smp *core.HR[int64]) {
			reg := obs.NewRegistry()
			reg.SetSink(obs.NewMemorySink(1024))
			smp.Instrument(reg, "p0")
		})
	})
	// The acceptance-relevant comparison: the full partition-sample-merge
	// pipeline (the hot path every figure bench exercises), with and
	// without a live registry.
	for _, on := range []bool{false, true} {
		name := "pipeline/off"
		opt := benchOpts()
		if on {
			name = "pipeline/on"
			opt.Obs = obs.NewRegistry()
		}
		b.Run(name, func(b *testing.B) {
			rng := randx.New(43)
			b.SetBytes(1 << 23)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunPipeline(experiments.AlgHR, workload.Unique, 1<<20, 16, opt, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSamplerThroughput measures raw per-element feeding cost of every
// scheme on the three workloads — the substrate number behind all the
// figure benches.
func BenchmarkSamplerThroughput(b *testing.B) {
	cfg := core.ConfigForNF(8192)
	for _, dist := range []workload.Distribution{workload.Unique, workload.Uniform, workload.Zipfian} {
		for _, alg := range []string{"SB", "HB", "HR", "Concise"} {
			b.Run(fmt.Sprintf("%s/%s", alg, dist), func(b *testing.B) {
				rng := randx.New(17)
				g := workload.New(workload.Spec{Dist: dist, N: int64(b.N) + 1, Seed: 9})
				var smp core.Sampler[int64]
				switch alg {
				case "SB":
					smp = core.NewSB[int64](cfg, 0.25, rng)
				case "HB":
					smp = core.NewHB[int64](cfg, int64(b.N)+1, rng)
				case "HR":
					smp = core.NewHR[int64](cfg, rng)
				case "Concise":
					smp = core.NewConcise[int64](cfg, 0, rng)
				}
				b.SetBytes(8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, _ := g.Next()
					smp.Feed(v)
				}
			})
		}
	}
}
